package sched

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0)=%d, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3)=%d, want GOMAXPROCS", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5)=%d", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 1000
		var hits [n]atomic.Int32
		ForEach(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	ForEach(8, 0, func(int) { t.Fatal("called on n=0") })
	calls := 0
	ForEach(8, 1, func(i int) { calls++ })
	if calls != 1 {
		t.Fatalf("n=1 calls=%d", calls)
	}
}

func TestMapIsPositional(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		got := Map(workers, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d]=%d", workers, i, v)
			}
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Fatalf("workers=%d: recovered %v, want boom", workers, r)
				}
			}()
			ForEach(workers, 50, func(i int) {
				if i == 13 {
					panic("boom")
				}
			})
			t.Fatalf("workers=%d: no panic", workers)
		}()
	}
}

func TestChunksPartition(t *testing.T) {
	cases := []struct{ workers, n int }{
		{1, 10}, {3, 10}, {4, 4}, {8, 3}, {5, 100}, {7, 0},
	}
	for _, tc := range cases {
		chunks := Chunks(tc.workers, tc.n)
		covered := 0
		prev := 0
		for _, c := range chunks {
			if c[0] != prev {
				t.Fatalf("workers=%d n=%d: gap before %v", tc.workers, tc.n, c)
			}
			if c[1] < c[0] {
				t.Fatalf("workers=%d n=%d: inverted chunk %v", tc.workers, tc.n, c)
			}
			covered += c[1] - c[0]
			prev = c[1]
		}
		if covered != tc.n {
			t.Fatalf("workers=%d n=%d: covered %d", tc.workers, tc.n, covered)
		}
		if tc.n > 0 && len(chunks) > Workers(tc.workers) {
			t.Fatalf("workers=%d n=%d: %d chunks", tc.workers, tc.n, len(chunks))
		}
	}
}

func TestMapChunksOrderedMerge(t *testing.T) {
	// Summing chunk maxima in order reproduces the serial order of items.
	for _, workers := range []int{1, 3, 8} {
		const n = 97
		parts := MapChunks(workers, n, func(lo, hi int) []int {
			out := make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				out = append(out, i)
			}
			return out
		})
		var flat []int
		for _, p := range parts {
			flat = append(flat, p...)
		}
		if len(flat) != n {
			t.Fatalf("workers=%d: %d items", workers, len(flat))
		}
		for i, v := range flat {
			if v != i {
				t.Fatalf("workers=%d: flat[%d]=%d — merge not in serial order", workers, i, v)
			}
		}
	}
}
