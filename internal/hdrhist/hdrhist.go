// Package hdrhist is a fixed-bucket, HDR-style latency histogram for
// hot-path recording: log-linear buckets (32 sub-buckets per power of
// two, ≤3.2% relative quantile error), a flat array of atomic
// counters, and zero allocations per Record. Both the serving side
// (per-endpoint latency, ingest publish lag — /metrics) and the load
// generator (cmd/loadgen) record into the same structure, so their
// summaries are directly comparable.
//
// Values are int64 and unit-agnostic; the serving stack records
// nanoseconds. Negative values clamp to 0; values beyond ~4.6×10¹⁸
// clamp into the top bucket.
package hdrhist

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// subBits fixes the resolution: 2^subBits sub-buckets per power of
	// two, so a bucket's width is at most value/2^subBits — quantiles
	// are exact to 1/32 ≈ 3.2%.
	subBits  = 5
	subCount = 1 << subBits // 32

	// maxShift bounds the geometric range; with subBits=5 the top
	// finite bucket starts at 2^(maxShift+subBits) = 2^62.
	maxShift   = 62 - subBits
	numBuckets = (maxShift+1)*subCount + subCount
)

// bucketIndex maps a value onto its log-linear bucket: values below
// subCount index linearly; above, the top subBits+1 significant bits
// select (exponent, sub-bucket). The mapping is monotone and
// contiguous: bucket b covers [lowerBound(b), lowerBound(b+1)).
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	e := bits.Len64(u) - (subBits + 1)
	if e <= 0 {
		return int(u)
	}
	if e > maxShift {
		e = maxShift
		return numBuckets - 1
	}
	return e<<subBits + int(u>>uint(e))
}

// bucketUpper is the largest value mapping into bucket idx — the value
// quantiles report, so reported quantiles never understate latency.
func bucketUpper(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	// Buckets ≥ subCount encode idx = e<<subBits + sub with
	// sub ∈ [subCount, 2·subCount), so idx>>subBits reads e one high
	// (sub's top bit folds in); recover e and sub explicitly.
	e := uint(idx>>subBits) - 1
	sub := uint64(idx&(subCount-1)) | subCount
	return int64((sub+1)<<e - 1)
}

// Histogram is the concurrent recorder. The zero value is NOT ready;
// use New (the bucket array is held out-of-line so copying a parent
// struct by value cannot tear counters).
type Histogram struct {
	counts *[numBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// New returns an empty histogram (~15 KB, fixed).
func New() *Histogram {
	return &Histogram{counts: new([numBuckets]atomic.Int64)}
}

// Record adds one observation. Safe for any number of concurrent
// callers; never allocates.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// RecordSince records the nanoseconds elapsed since t0.
func (h *Histogram) RecordSince(t0 time.Time) { h.Record(int64(time.Since(t0))) }

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Summary is the JSON-able digest of a histogram at one point in time.
// Quantiles are bucket upper bounds (never understated, ≤3.2% over).
type Summary struct {
	Count  int64 `json:"count"`
	MeanNs int64 `json:"mean_ns"`
	P50Ns  int64 `json:"p50_ns"`
	P90Ns  int64 `json:"p90_ns"`
	P99Ns  int64 `json:"p99_ns"`
	P999Ns int64 `json:"p999_ns"`
	MaxNs  int64 `json:"max_ns"`
}

// Snapshot copies the live counters into a point-in-time Summary.
// Concurrent Records during the copy may land on either side; the
// result is a consistent-enough digest for metrics, not a barrier.
func (h *Histogram) Snapshot() Summary {
	var counts [numBuckets]int64
	var total int64
	for i := range h.counts {
		c := h.counts[i].Load()
		counts[i] = c
		total += c
	}
	s := Summary{Count: total, MaxNs: h.max.Load()}
	if total == 0 {
		return s
	}
	s.MeanNs = h.sum.Load() / total
	// One cumulative sweep answers all four quantiles.
	targets := [4]int64{
		quantileRank(total, 0.50),
		quantileRank(total, 0.90),
		quantileRank(total, 0.99),
		quantileRank(total, 0.999),
	}
	vals := [4]*int64{&s.P50Ns, &s.P90Ns, &s.P99Ns, &s.P999Ns}
	var cum int64
	ti := 0
	for i := 0; i < numBuckets && ti < len(targets); i++ {
		cum += counts[i]
		for ti < len(targets) && cum >= targets[ti] {
			*vals[ti] = bucketUpper(i)
			ti++
		}
	}
	// The max is exact; clamp the coarser top quantiles to it.
	for _, v := range vals {
		if *v > s.MaxNs {
			*v = s.MaxNs
		}
	}
	return s
}

// quantileRank is the 1-based rank holding quantile q of n samples.
func quantileRank(n int64, q float64) int64 {
	r := int64(q*float64(n)) + 1
	if r > n {
		r = n
	}
	return r
}
