package hdrhist

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestBucketMappingMonotone pins the log-linear layout: indexes are
// monotone in the value, contiguous, and every bucket's upper bound
// maps back into the same bucket (the round-trip that makes reported
// quantiles well-defined).
func TestBucketMappingMonotone(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 2, 31, 32, 33, 63, 64, 65, 127, 128,
		1000, 4095, 4096, 1 << 20, 1<<20 + 1, 1 << 30, 1 << 40, 1 << 50,
		1<<62 - 1, 1 << 62, math.MaxInt64} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("index not monotone at %d: %d < %d", v, idx, prev)
		}
		if idx >= numBuckets {
			t.Fatalf("index %d out of range for %d", idx, v)
		}
		up := bucketUpper(idx)
		if up < v {
			t.Fatalf("bucketUpper(%d)=%d below member value %d", idx, up, v)
		}
		if got := bucketIndex(up); got != idx {
			t.Fatalf("upper bound %d of bucket %d maps to bucket %d", up, idx, got)
		}
		prev = idx
	}
	// Exhaustive contiguity over the first three octaves.
	last := bucketIndex(0)
	for v := int64(1); v < 256; v++ {
		idx := bucketIndex(v)
		if idx != last && idx != last+1 {
			t.Fatalf("bucket jump at %d: %d -> %d", v, last, idx)
		}
		last = idx
	}
}

// TestQuantileAccuracy checks the ≤3.2% relative-error contract
// against exact order statistics of a lognormal-ish sample.
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := New()
	vals := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := int64(math.Exp(rng.NormFloat64()*1.5 + 12)) // ~163µs median in ns
		vals = append(vals, v)
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	s := h.Snapshot()
	if s.Count != int64(len(vals)) {
		t.Fatalf("count %d, want %d", s.Count, len(vals))
	}
	check := func(name string, got int64, q float64) {
		exact := vals[int(q*float64(len(vals)))]
		rel := math.Abs(float64(got)-float64(exact)) / float64(exact)
		if rel > 0.04 { // 3.2% bucket width + rank-vs-index slack
			t.Errorf("%s: got %d, exact %d (rel err %.3f)", name, got, exact, rel)
		}
	}
	check("p50", s.P50Ns, 0.50)
	check("p90", s.P90Ns, 0.90)
	check("p99", s.P99Ns, 0.99)
	check("p999", s.P999Ns, 0.999)
	if s.MaxNs != vals[len(vals)-1] {
		t.Fatalf("max %d, want %d", s.MaxNs, vals[len(vals)-1])
	}
	if s.P50Ns > s.P90Ns || s.P90Ns > s.P99Ns || s.P99Ns > s.P999Ns || s.P999Ns > s.MaxNs {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
}

// TestRecordAllocFree pins the hot-path contract: Record never
// allocates.
func TestRecordAllocFree(t *testing.T) {
	h := New()
	if allocs := testing.AllocsPerRun(1000, func() { h.Record(12345) }); allocs != 0 {
		t.Fatalf("Record allocates %.1f times per call", allocs)
	}
}

// TestConcurrentRecord is the -race exercise: total counts survive
// concurrent recording exactly.
func TestConcurrentRecord(t *testing.T) {
	h := New()
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(int64(rng.Intn(1 << 30)))
			}
		}(int64(g))
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != goroutines*per {
		t.Fatalf("count %d, want %d", got, goroutines*per)
	}
}

// TestEmptySummary: an unrecorded histogram reports zeros, not junk.
func TestEmptySummary(t *testing.T) {
	if s := New().Snapshot(); s != (Summary{}) {
		t.Fatalf("empty summary %+v", s)
	}
}
