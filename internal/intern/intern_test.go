package intern

import (
	"math/rand"
	"sort"
	"testing"
)

func TestBuildSortedRank(t *testing.T) {
	tb := Build([]string{"cherry", "apple", "banana", "apple", "cherry"})
	if tb.Len() != 3 || tb.FrozenLen() != 3 {
		t.Fatalf("len=%d frozen=%d", tb.Len(), tb.FrozenLen())
	}
	for want, s := range []string{"apple", "banana", "cherry"} {
		id, ok := tb.Lookup(s)
		if !ok || id != ID(want) {
			t.Fatalf("Lookup(%q)=%d,%v want %d", s, id, ok, want)
		}
		if tb.String(ID(want)) != s {
			t.Fatalf("String(%d)=%q want %q", want, tb.String(ID(want)), s)
		}
	}
	if _, ok := tb.Lookup("durian"); ok {
		t.Fatal("unknown symbol found")
	}
}

func TestInternAppendsAfterFrozen(t *testing.T) {
	tb := Build([]string{"m"})
	if id := tb.Intern("m"); id != 0 {
		t.Fatalf("existing symbol re-interned to %d", id)
	}
	a := tb.Intern("z")
	b := tb.Intern("a") // sorts before everything, but arrives late
	if a != 1 || b != 2 {
		t.Fatalf("late IDs %d,%d want 1,2", a, b)
	}
	// Less must still follow string order across the frozen boundary.
	if !tb.Less(b, 0) || !tb.Less(0, a) || tb.Less(a, b) {
		t.Fatal("Less does not match string order for late symbols")
	}
}

func TestSortMatchesStringSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := []string{"delta", "alpha", "echo", "bravo", "charlie"}
	tb := Build(base)
	tb.Intern("aardvark")
	tb.Intern("zulu")
	ids := make([]ID, tb.Len())
	for i := range ids {
		ids[i] = ID(i)
	}
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	tb.Sort(ids)
	var got []string
	for _, id := range ids {
		got = append(got, tb.String(id))
	}
	want := append([]string(nil), got...)
	sort.Strings(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sort order %v, want %v", got, want)
		}
	}
}

func TestTailReplay(t *testing.T) {
	tb := Build([]string{"x", "y"})
	tb.Intern("late1")
	tb.Intern("late0")
	tail := append([]string(nil), tb.Tail()...)

	fresh := Build([]string{"x", "y"})
	if err := fresh.ReplayTail(tail); err != nil {
		t.Fatal(err)
	}
	if err := fresh.ReplayTail([]string{"x"}); err == nil {
		t.Fatal("replaying a present symbol did not error")
	}
	if fresh.Len() != tb.Len() {
		t.Fatalf("replayed len=%d want %d", fresh.Len(), tb.Len())
	}
	for i := 0; i < tb.Len(); i++ {
		if fresh.String(ID(i)) != tb.String(ID(i)) {
			t.Fatalf("id %d: %q vs %q", i, fresh.String(ID(i)), tb.String(ID(i)))
		}
	}
}

func TestBuildDeterminism(t *testing.T) {
	in := []string{"q", "c", "b", "q", "a"}
	t1, t2 := Build(in), Build(append([]string(nil), in...))
	if t1.Len() != t2.Len() {
		t.Fatal("nondeterministic Build")
	}
	for i := 0; i < t1.Len(); i++ {
		if t1.String(ID(i)) != t2.String(ID(i)) {
			t.Fatalf("id %d differs", i)
		}
	}
}
