// Package intern provides deterministic string interning: symbol tables
// that map strings to dense int32 IDs and back. Every other layer of the
// pipeline keys its hot paths on these IDs — author names, venues and
// title tokens are hashed exactly once, at corpus freeze time, instead
// of millions of times during stage-1 pair counting and stage-2
// similarity evaluation.
//
// Determinism is the load-bearing property. A table built with Build
// assigns IDs by sorted rank, so for the frozen symbol set
//
//	idA < idB  ⇔  stringA < stringB
//
// and iterating IDs in ascending order reproduces, bit for bit, the
// float-summation orders of the previous string-sorted implementation
// (γ⁴ and γ⁶ sum non-associative floats in sorted-key order). Symbols
// interned after Build — names, venues or keywords arriving on the
// incremental AddPaper path — get IDs in arrival order past the frozen
// range; Less falls back to a string comparison for those, preserving
// exact lexicographic semantics at a cost paid only by late symbols.
package intern

import (
	"fmt"
	"sort"
)

// ID is an interned symbol identifier. IDs are dense, starting at 0.
type ID = int32

// None marks "no symbol" (e.g. a paper without a venue).
const None ID = -1

// Table maps strings to dense IDs and back. The frozen prefix (the
// symbols passed to Build) is sorted, so ID order is string order there.
// A Table is safe for concurrent reads; Intern requires external
// serialization (in the pipeline it is only called from the
// single-goroutine AddPaper path).
type Table struct {
	strs   []string
	idx    map[string]ID
	frozen int
}

// Build constructs a table over the given symbols (duplicates are fine).
// IDs are assigned by sorted rank: the lexicographically smallest symbol
// gets ID 0.
func Build(symbols []string) *Table {
	uniq := make(map[string]struct{}, len(symbols))
	for _, s := range symbols {
		uniq[s] = struct{}{}
	}
	strs := make([]string, 0, len(uniq))
	for s := range uniq {
		strs = append(strs, s)
	}
	sort.Strings(strs)
	t := &Table{
		strs:   strs,
		idx:    make(map[string]ID, len(strs)),
		frozen: len(strs),
	}
	for i, s := range strs {
		t.idx[s] = ID(i)
	}
	return t
}

// Lookup returns the ID of s, or (None, false) when s is unknown.
func (t *Table) Lookup(s string) (ID, bool) {
	id, ok := t.idx[s]
	if !ok {
		return None, false
	}
	return id, true
}

// Intern returns the ID of s, assigning the next free ID when s is new.
// IDs past the frozen range are in arrival order, not sorted order.
func (t *Table) Intern(s string) ID {
	if id, ok := t.idx[s]; ok {
		return id
	}
	id := ID(len(t.strs))
	t.strs = append(t.strs, s)
	t.idx[s] = id
	return id
}

// String returns the symbol of id. It panics on out-of-range IDs,
// mirroring slice indexing.
func (t *Table) String(id ID) string { return t.strs[id] }

// Len returns the number of interned symbols.
func (t *Table) Len() int { return len(t.strs) }

// FrozenLen returns the size of the sorted prefix built by Build.
func (t *Table) FrozenLen() int { return t.frozen }

// Strings returns the backing symbol slice, indexed by ID. Callers must
// not mutate it.
func (t *Table) Strings() []string { return t.strs }

// Less reports whether symbol a sorts lexicographically before symbol b.
// Both in the frozen range, this is an integer comparison; otherwise it
// falls back to comparing the strings.
func (t *Table) Less(a, b ID) bool {
	if int(a) < t.frozen && int(b) < t.frozen {
		return a < b
	}
	return t.strs[a] < t.strs[b]
}

// Compare orders two symbols lexicographically, returning -1, 0 or +1.
// Both in the frozen range, this is an integer comparison — the fast
// path of the flat-profile merge-joins, which walk two symbol-sorted
// slices with this comparator.
func (t *Table) Compare(a, b ID) int {
	if a == b {
		return 0
	}
	if int(a) < t.frozen && int(b) < t.frozen {
		if a < b {
			return -1
		}
		return 1
	}
	if t.strs[a] < t.strs[b] {
		return -1
	}
	return 1
}

// Sort orders ids lexicographically by their symbols (ascending). When
// every id is in the frozen range this is a plain integer sort.
func (t *Table) Sort(ids []ID) {
	allFrozen := true
	for _, id := range ids {
		if int(id) >= t.frozen {
			allFrozen = false
			break
		}
	}
	if allFrozen {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return
	}
	sort.Slice(ids, func(i, j int) bool { return t.Less(ids[i], ids[j]) })
}

// Tail returns the symbols interned after Build, in arrival order — the
// state a snapshot must persist so replaying it reproduces identical IDs.
func (t *Table) Tail() []string { return t.strs[t.frozen:] }

// ReplayTail re-interns previously recorded tail symbols in order,
// reproducing their original IDs. A symbol that is already present
// signals a snapshot/corpus mismatch and returns an error.
func (t *Table) ReplayTail(tail []string) error {
	for _, s := range tail {
		if _, ok := t.idx[s]; ok {
			return fmt.Errorf("intern: replay symbol %q already present", s)
		}
		t.Intern(s)
	}
	return nil
}
