// Package features extracts pairwise paper features for the supervised
// baselines of §VI-A3, following the feature design of Treeratpituk &
// Giles (JCDL 2009) [17]: given two papers that both mention a target
// name, produce similarities of co-authors, titles (keywords), venues and
// years from which a classifier decides whether the two occurrences are
// the same person.
package features

import (
	"math"

	"iuad/internal/bib"
)

// Dim is the number of features produced by PairFeatures.
const Dim = 8

// Names lists the feature names in vector order.
var Names = [Dim]string{
	"shared-coauthors",
	"jaccard-coauthors",
	"shared-keywords",
	"jaccard-keywords",
	"idf-shared-keywords",
	"venue-match",
	"venue-idf",
	"year-gap",
}

// Extractor computes pairwise features against corpus-level statistics.
type Extractor struct {
	corpus *bib.Corpus
}

// NewExtractor builds an extractor over a frozen corpus.
func NewExtractor(c *bib.Corpus) *Extractor { return &Extractor{corpus: c} }

// PairFeatures returns the Dim-vector for papers a and b with respect to
// the ambiguous target name (excluded from co-author comparisons).
func (e *Extractor) PairFeatures(a, b bib.PaperID, target string) []float64 {
	pa, pb := e.corpus.Paper(a), e.corpus.Paper(b)
	out := make([]float64, Dim)

	// Co-author overlap, excluding the target name itself.
	ca := otherAuthors(pa, target)
	cb := otherAuthors(pb, target)
	shared := intersectCount(ca, cb)
	out[0] = float64(shared)
	out[1] = jaccard(shared, len(ca), len(cb))

	// Keyword overlap.
	ka := keywordSet(pa.Title)
	kb := keywordSet(pb.Title)
	sharedKW := 0
	idfSum := 0.0
	for w := range ka {
		if _, ok := kb[w]; !ok {
			continue
		}
		sharedKW++
		f := e.corpus.WordFrequency(w)
		if f < 2 {
			f = 2
		}
		idfSum += 1 / math.Log(float64(f))
	}
	out[2] = float64(sharedKW)
	out[3] = jaccard(sharedKW, len(ka), len(kb))
	out[4] = idfSum

	// Venue agreement.
	if pa.Venue != "" && pa.Venue == pb.Venue {
		out[5] = 1
		f := e.corpus.VenueFrequency(pa.Venue)
		if f < 2 {
			f = 2
		}
		out[6] = 1 / math.Log(float64(f))
	}

	// Temporal distance (same-author papers cluster in time).
	gap := pa.Year - pb.Year
	if gap < 0 {
		gap = -gap
	}
	out[7] = float64(gap)
	return out
}

func otherAuthors(p *bib.Paper, target string) map[string]struct{} {
	out := make(map[string]struct{}, len(p.Authors))
	for _, a := range p.Authors {
		if a != target {
			out[a] = struct{}{}
		}
	}
	return out
}

func keywordSet(title string) map[string]struct{} {
	out := map[string]struct{}{}
	for _, w := range bib.Keywords(title) {
		out[w] = struct{}{}
	}
	return out
}

func intersectCount(a, b map[string]struct{}) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	n := 0
	for x := range a {
		if _, ok := b[x]; ok {
			n++
		}
	}
	return n
}

func jaccard(shared, na, nb int) float64 {
	union := na + nb - shared
	if union <= 0 {
		return 0
	}
	return float64(shared) / float64(union)
}
