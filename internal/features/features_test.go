package features

import (
	"testing"

	"iuad/internal/bib"
)

func corpus(t *testing.T) *bib.Corpus {
	t.Helper()
	c := bib.NewCorpus(0)
	c.MustAdd(bib.Paper{ // 0
		Title: "Graph Kernels for Disambiguation", Venue: "KDD", Year: 2010,
		Authors: []string{"Wei Wang", "Ann Lee", "Bo Chen"},
	})
	c.MustAdd(bib.Paper{ // 1
		Title: "Graph Kernels at Scale", Venue: "KDD", Year: 2012,
		Authors: []string{"Wei Wang", "Ann Lee"},
	})
	c.MustAdd(bib.Paper{ // 2
		Title: "Streaming Joins", Venue: "VLDB", Year: 2005,
		Authors: []string{"Wei Wang", "Cara Diaz"},
	})
	c.Freeze()
	return c
}

func TestPairFeaturesSimilarPapers(t *testing.T) {
	e := NewExtractor(corpus(t))
	f := e.PairFeatures(0, 1, "Wei Wang")
	if len(f) != Dim {
		t.Fatalf("len=%d", len(f))
	}
	if f[0] != 1 { // shared co-author Ann Lee (target excluded)
		t.Fatalf("shared-coauthors=%v", f[0])
	}
	// Jaccard coauthors: |{Ann}| / |{Ann,Bo}| = 0.5.
	if f[1] != 0.5 {
		t.Fatalf("jaccard-coauthors=%v", f[1])
	}
	// Shared keywords: graph, kernels.
	if f[2] != 2 {
		t.Fatalf("shared-keywords=%v", f[2])
	}
	if f[4] <= 0 {
		t.Fatalf("idf-shared-keywords=%v", f[4])
	}
	if f[5] != 1 || f[6] <= 0 {
		t.Fatalf("venue features=%v %v", f[5], f[6])
	}
	if f[7] != 2 {
		t.Fatalf("year-gap=%v", f[7])
	}
}

func TestPairFeaturesDissimilarPapers(t *testing.T) {
	e := NewExtractor(corpus(t))
	f := e.PairFeatures(0, 2, "Wei Wang")
	if f[0] != 0 || f[1] != 0 {
		t.Fatalf("coauthor features=%v", f[:2])
	}
	if f[2] != 0 || f[4] != 0 {
		t.Fatalf("keyword features=%v %v", f[2], f[4])
	}
	if f[5] != 0 || f[6] != 0 {
		t.Fatalf("venue features=%v %v", f[5], f[6])
	}
	if f[7] != 5 {
		t.Fatalf("year-gap=%v", f[7])
	}
}

func TestPairFeaturesSymmetric(t *testing.T) {
	e := NewExtractor(corpus(t))
	ab := e.PairFeatures(0, 1, "Wei Wang")
	ba := e.PairFeatures(1, 0, "Wei Wang")
	for i := range ab {
		if ab[i] != ba[i] {
			t.Fatalf("feature %s asymmetric: %v vs %v", Names[i], ab[i], ba[i])
		}
	}
}
