package eval_test

// The quick-corpus accuracy pin. It lives in internal/eval (the metrics
// layer whose numbers it pins) as an external test package so it can
// drive the full scenario through internal/accuracy, which itself
// imports eval — a plain eval test would cycle.
//
// Everything upstream is deterministic — synth generation per seed and
// the pipeline per config (bit-identical for every worker count) — so
// the bands below are tolerance for deliberate algorithmic change and
// cross-architecture floating-point drift, not run-to-run noise. The
// measured quick-corpus values (seed 1) are:
//
//	pairwise micro-F1  0.9211
//	B³ F1              0.8346
//	purity             0.9826
//
// Bands are ±0.02–0.05 below the measurement (a real accuracy
// regression on this corpus moves F1 by far more; see the incremental
// gap measurements in internal/accuracy) and bounded above at 0.995:
// near-perfect scores on a corpus with genuinely hard homonym blocks
// mean ground truth leaked into the features, which is as much a bug as
// a recall collapse.

import (
	"testing"

	"iuad/internal/accuracy"
)

func TestQuickCorpusAccuracyPin(t *testing.T) {
	cfg := accuracy.Quick()
	cfg.PrefixFrac = 0 // batch path only: the pin must stay cheap for -short CI
	res, err := accuracy.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Batch.Metrics
	t.Logf("pairwise=%+v b3F=%.4f purity=%.4f instances=%d blocks=%d",
		m.Pairwise, m.B3F, m.Purity, m.Instances, m.Blocks)
	if m.Instances < 1000 || m.Blocks < 30 {
		t.Fatalf("evaluation set shrank: %d instances over %d blocks — the pin no longer measures anything",
			m.Instances, m.Blocks)
	}
	pin := func(name string, got, lo, hi float64) {
		if got < lo {
			t.Errorf("%s=%.4f below pin band [%.2f, %.3f]: accuracy regression", name, got, lo, hi)
		}
		if got > hi {
			t.Errorf("%s=%.4f above pin band [%.2f, %.3f]: suspicious — check for truth leakage", name, got, lo, hi)
		}
	}
	pin("pairwise micro-F1", m.Pairwise.MicroF, 0.90, 0.995)
	pin("pairwise precision", m.Pairwise.MicroP, 0.94, 0.995)
	pin("B³ F1", m.B3F, 0.78, 0.995)
	pin("purity", m.Purity, 0.95, 1.0)
}
