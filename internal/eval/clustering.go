package eval

// Streaming clustering evaluation over name blocks.
//
// The labeled accuracy scenario scores corpora two orders of magnitude
// beyond the quick corpus, so the metrics layer must stream: one name
// block at a time, O(instances + cells) work per block, no O(n²) pair
// materialization, and no per-block allocation in steady state (the
// contingency scratch is reused across blocks).
//
// Every metric is derived from one per-block contingency table
// n_ct = |instances in predicted cluster c with ground-truth author t|,
// built over LABELED instances only. Instances with Truth < 0 (e.g.
// bib.UnknownAuthor slots of partially labeled corpora) carry no
// ground-truth signal; they are excluded from every metric — counted in
// Unlabeled, never zero-scored — so mixing unlabeled papers into a
// corpus can never move a score.
//
// In this system a predicted cluster is a network vertex (one name) and
// a ground-truth author has one name, so neither clusters nor truth
// identities ever span name blocks: per-block accumulation of the
// pairwise, B³ and purity sums is exact, not an approximation.

// cellKey is one (predicted cluster, truth author) contingency cell.
type cellKey struct{ c, t int }

// Accumulator folds name blocks into pairwise, B³ and purity sums.
// The zero value is ready to use. Not safe for concurrent use; shard
// accumulators and Merge them instead.
type Accumulator struct {
	// Pairs holds the pairwise confusion counts (labeled instances only).
	Pairs PairCounts
	// Unlabeled counts instances excluded for missing ground truth.
	Unlabeled int64

	instances int64   // labeled instances folded in
	blocks    int64   // blocks with ≥1 labeled instance
	b3p, b3r  float64 // Σ per-instance B³ precision / recall
	purity    int64   // Σ_blocks Σ_c max_t n_ct

	// Reused per-block scratch (cleared, not reallocated, between blocks).
	cells     map[cellKey]int64
	byCluster map[int]int64
	byTruth   map[int]int64
}

// AddBlock folds one name block of instances into the accumulator.
// Instances with Truth < 0 are excluded (counted in Unlabeled).
func (a *Accumulator) AddBlock(instances []Instance) {
	if a.cells == nil {
		a.cells = make(map[cellKey]int64)
		a.byCluster = make(map[int]int64)
		a.byTruth = make(map[int]int64)
	} else {
		clear(a.cells)
		clear(a.byCluster)
		clear(a.byTruth)
	}
	var n int64
	for _, in := range instances {
		if in.Truth < 0 {
			a.Unlabeled++
			continue
		}
		a.cells[cellKey{in.Cluster, in.Truth}]++
		a.byCluster[in.Cluster]++
		a.byTruth[in.Truth]++
		n++
	}
	if n == 0 {
		return
	}
	a.instances += n
	a.blocks++

	// Pairwise: the cell-counting identity of PairCounts.AddName, off the
	// shared contingency table.
	var tp, samePred, sameTruth int64
	for key, k := range a.cells {
		tp += choose2(k)
		// B³ per-instance sums: every instance of cell (c,t) has
		// precision n_ct/n_c and recall n_ct/n_t, so the cell contributes
		// n_ct²/n_c and n_ct²/n_t.
		a.b3p += float64(k*k) / float64(a.byCluster[key.c])
		a.b3r += float64(k*k) / float64(a.byTruth[key.t])
	}
	for _, k := range a.byCluster {
		samePred += choose2(k)
	}
	for _, k := range a.byTruth {
		sameTruth += choose2(k)
	}
	total := choose2(n)
	a.Pairs.TP += tp
	a.Pairs.FP += samePred - tp
	a.Pairs.FN += sameTruth - tp
	a.Pairs.TN += total - samePred - sameTruth + tp

	// Purity: majority truth per predicted cluster. max over t of n_ct
	// needs a per-cluster max; reuse byCluster's key set by scanning
	// cells (each cluster's max is the largest of its cells).
	for c := range a.byCluster {
		a.byCluster[c] = 0 // repurpose as per-cluster running max
	}
	for key, k := range a.cells {
		if k > a.byCluster[key.c] {
			a.byCluster[key.c] = k
		}
	}
	for _, m := range a.byCluster {
		a.purity += m
	}
}

// Merge folds another accumulator's sums into a (for sharded evaluation;
// blocks are independent, so any partition merges exactly).
func (a *Accumulator) Merge(b *Accumulator) {
	a.Pairs.TP += b.Pairs.TP
	a.Pairs.FP += b.Pairs.FP
	a.Pairs.FN += b.Pairs.FN
	a.Pairs.TN += b.Pairs.TN
	a.Unlabeled += b.Unlabeled
	a.instances += b.instances
	a.blocks += b.blocks
	a.b3p += b.b3p
	a.b3r += b.b3r
	a.purity += b.purity
}

// Instances returns the number of labeled instances folded in.
func (a *Accumulator) Instances() int64 { return a.instances }

// Blocks returns the number of blocks with at least one labeled instance.
func (a *Accumulator) Blocks() int64 { return a.blocks }

// ClusterMetrics bundles every clustering measurement of one evaluation:
// the pairwise micro metrics of §VI-A2 plus B³ and cluster purity.
type ClusterMetrics struct {
	// Pairwise holds MicroA/P/R/F over instance pairs.
	Pairwise Metrics `json:"pairwise"`
	// B3P/B3R/B3F are the B-cubed per-instance precision/recall/F1.
	B3P float64 `json:"b3_precision"`
	B3R float64 `json:"b3_recall"`
	B3F float64 `json:"b3_f1"`
	// Purity is Σ_c max_t n_ct / N: the fraction of instances sitting in
	// the majority-truth class of their predicted cluster.
	Purity float64 `json:"purity"`
	// Instances/Blocks/Unlabeled describe evaluation coverage.
	Instances int64 `json:"instances"`
	Blocks    int64 `json:"blocks"`
	Unlabeled int64 `json:"unlabeled_excluded"`
}

// Metrics converts the accumulated sums into ClusterMetrics. Empty
// denominators yield 0, mirroring PairCounts.Metrics.
func (a *Accumulator) Metrics() ClusterMetrics {
	m := ClusterMetrics{
		Pairwise:  a.Pairs.Metrics(),
		Instances: a.instances,
		Blocks:    a.blocks,
		Unlabeled: a.Unlabeled,
	}
	if a.instances > 0 {
		m.B3P = a.b3p / float64(a.instances)
		m.B3R = a.b3r / float64(a.instances)
		m.Purity = float64(a.purity) / float64(a.instances)
	}
	if pr := m.B3P + m.B3R; pr > 0 {
		m.B3F = 2 * m.B3P * m.B3R / pr
	}
	return m
}
