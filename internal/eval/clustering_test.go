package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

// TestClusterMetricsTable drives the Accumulator through hand-computed
// clusterings, including every degenerate shape the streaming layer must
// survive: empty blocks, all-singletons, one-cluster, single instances,
// and unlabeled slots mixed with labeled ones.
func TestClusterMetricsTable(t *testing.T) {
	cases := []struct {
		name   string
		blocks [][]Instance
		want   ClusterMetrics
	}{
		{
			name: "perfect two clusters",
			blocks: [][]Instance{{
				{Cluster: 0, Truth: 10}, {Cluster: 0, Truth: 10},
				{Cluster: 1, Truth: 20}, {Cluster: 1, Truth: 20}, {Cluster: 1, Truth: 20},
			}},
			want: ClusterMetrics{
				Pairwise:  Metrics{MicroA: 1, MicroP: 1, MicroR: 1, MicroF: 1},
				B3P:       1, B3R: 1, B3F: 1, Purity: 1,
				Instances: 5, Blocks: 1,
			},
		},
		{
			name: "all singletons, one true author",
			// Predicted apart, truly together: pairwise P undefined (0),
			// R=0. B³: precision 1 (each singleton cluster is pure),
			// recall 1/3 per instance. Purity 1 (singletons are pure).
			blocks: [][]Instance{{
				{Cluster: 0, Truth: 1}, {Cluster: 1, Truth: 1}, {Cluster: 2, Truth: 1},
			}},
			want: ClusterMetrics{
				Pairwise:  Metrics{},
				B3P:       1, B3R: 1.0 / 3, B3F: 2 * 1 * (1.0 / 3) / (1 + 1.0/3),
				Purity:    1,
				Instances: 3, Blocks: 1,
			},
		},
		{
			name: "one cluster, three true authors",
			// Everything merged: pairwise P=0 (3 FP), R undefined → 0.
			// B³: precision 1/3 per instance, recall 1. Purity 1/3.
			blocks: [][]Instance{{
				{Cluster: 7, Truth: 1}, {Cluster: 7, Truth: 2}, {Cluster: 7, Truth: 3},
			}},
			want: ClusterMetrics{
				Pairwise:  Metrics{},
				B3P:       1.0 / 3, B3R: 1, B3F: 2 * (1.0 / 3) * 1 / (1.0/3 + 1),
				Purity:    1.0 / 3,
				Instances: 3, Blocks: 1,
			},
		},
		{
			name: "known mixed 2x2",
			// Clusters {a,a,b,b}, truth {x,y,x,y}: TP=0 FP=2 FN=2 TN=2.
			// B³ per instance: own cell 1 of cluster size 2 → P=1/2; own
			// cell 1 of truth size 2 → R=1/2. Purity: max per cluster is
			// 1, so 2/4.
			blocks: [][]Instance{{
				{Cluster: 0, Truth: 1}, {Cluster: 0, Truth: 2},
				{Cluster: 1, Truth: 1}, {Cluster: 1, Truth: 2},
			}},
			want: ClusterMetrics{
				Pairwise:  Metrics{MicroA: 1.0 / 3},
				B3P:       0.5, B3R: 0.5, B3F: 0.5, Purity: 0.5,
				Instances: 4, Blocks: 1,
			},
		},
		{
			name:   "empty block",
			blocks: [][]Instance{{}},
			want:   ClusterMetrics{},
		},
		{
			name:   "single instance",
			blocks: [][]Instance{{{Cluster: 3, Truth: 9}}},
			// One labeled instance: no pairs, but B³ and purity see a
			// perfectly pure singleton.
			want: ClusterMetrics{
				Pairwise:  Metrics{},
				B3P:       1, B3R: 1, B3F: 1, Purity: 1,
				Instances: 1, Blocks: 1,
			},
		},
		{
			name: "unlabeled excluded not zero-scored",
			// The two unlabeled slots share cluster 0 with a labeled one;
			// if they were scored as truth "-1" they would manufacture FP
			// pairs. They must instead vanish: result identical to the
			// perfect 2-instance clustering.
			blocks: [][]Instance{{
				{Cluster: 0, Truth: 5}, {Cluster: 0, Truth: 5},
				{Cluster: 0, Truth: -1}, {Cluster: 9, Truth: -1},
			}},
			want: ClusterMetrics{
				Pairwise:  Metrics{MicroA: 1, MicroP: 1, MicroR: 1, MicroF: 1},
				B3P:       1, B3R: 1, B3F: 1, Purity: 1,
				Instances: 2, Blocks: 1, Unlabeled: 2,
			},
		},
		{
			name: "all unlabeled block",
			blocks: [][]Instance{{
				{Cluster: 0, Truth: -1}, {Cluster: 1, Truth: -1},
			}},
			want: ClusterMetrics{Unlabeled: 2},
		},
		{
			name: "two blocks accumulate",
			blocks: [][]Instance{
				{{Cluster: 0, Truth: 1}, {Cluster: 0, Truth: 1}}, // 1 TP
				{{Cluster: 0, Truth: 1}, {Cluster: 1, Truth: 2}}, // 1 TN
			},
			want: ClusterMetrics{
				Pairwise:  Metrics{MicroA: 1, MicroP: 1, MicroR: 1, MicroF: 1},
				B3P:       1, B3R: 1, B3F: 1, Purity: 1,
				Instances: 4, Blocks: 2,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var acc Accumulator
			for _, blk := range tc.blocks {
				acc.AddBlock(blk)
			}
			got := acc.Metrics()
			if got.Pairwise != tc.want.Pairwise {
				t.Errorf("pairwise=%+v want %+v", got.Pairwise, tc.want.Pairwise)
			}
			if !approx(got.B3P, tc.want.B3P) || !approx(got.B3R, tc.want.B3R) || !approx(got.B3F, tc.want.B3F) {
				t.Errorf("B3 P/R/F = %v/%v/%v want %v/%v/%v",
					got.B3P, got.B3R, got.B3F, tc.want.B3P, tc.want.B3R, tc.want.B3F)
			}
			if !approx(got.Purity, tc.want.Purity) {
				t.Errorf("purity=%v want %v", got.Purity, tc.want.Purity)
			}
			if got.Instances != tc.want.Instances || got.Blocks != tc.want.Blocks || got.Unlabeled != tc.want.Unlabeled {
				t.Errorf("coverage inst/blocks/unlabeled = %d/%d/%d want %d/%d/%d",
					got.Instances, got.Blocks, got.Unlabeled,
					tc.want.Instances, tc.want.Blocks, tc.want.Unlabeled)
			}
		})
	}
}

// bruteClusterMetrics recomputes B³ and purity instance by instance over
// labeled instances of one block.
func bruteClusterMetrics(blocks [][]Instance) (b3p, b3r, purity float64, n int64) {
	var psum, rsum float64
	var puritySum int64
	for _, blk := range blocks {
		var labeled []Instance
		for _, in := range blk {
			if in.Truth >= 0 {
				labeled = append(labeled, in)
			}
		}
		for _, a := range labeled {
			var cell, csize, tsize int64
			for _, b := range labeled {
				if b.Cluster == a.Cluster && b.Truth == a.Truth {
					cell++
				}
				if b.Cluster == a.Cluster {
					csize++
				}
				if b.Truth == a.Truth {
					tsize++
				}
			}
			psum += float64(cell) / float64(csize)
			rsum += float64(cell) / float64(tsize)
		}
		clusters := map[int]map[int]int64{}
		for _, in := range labeled {
			if clusters[in.Cluster] == nil {
				clusters[in.Cluster] = map[int]int64{}
			}
			clusters[in.Cluster][in.Truth]++
		}
		for _, byTruth := range clusters {
			var max int64
			for _, k := range byTruth {
				if k > max {
					max = k
				}
			}
			puritySum += max
		}
		n += int64(len(labeled))
	}
	if n == 0 {
		return 0, 0, 0, 0
	}
	return psum / float64(n), rsum / float64(n), float64(puritySum) / float64(n), n
}

// Property: the streaming cell sums agree with per-instance brute force,
// including pairwise counts (filtered brute force) and unlabeled mixing.
func TestAccumulatorMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		blocks := make([][]Instance, 1+rng.Intn(4))
		var pairWant PairCounts
		for b := range blocks {
			n := rng.Intn(30)
			blk := make([]Instance, n)
			for i := range blk {
				blk[i] = Instance{Cluster: rng.Intn(5), Truth: rng.Intn(6) - 1} // -1 = unlabeled, mixed in
			}
			blocks[b] = blk
			// Pairwise pairs never cross blocks: brute-force each block's
			// labeled subset separately and sum.
			var labeled []Instance
			for _, in := range blk {
				if in.Truth >= 0 {
					labeled = append(labeled, in)
				}
			}
			bf := bruteForce(labeled)
			pairWant.TP += bf.TP
			pairWant.FP += bf.FP
			pairWant.FN += bf.FN
			pairWant.TN += bf.TN
		}
		var acc Accumulator
		for _, blk := range blocks {
			acc.AddBlock(blk)
		}
		if acc.Pairs != pairWant {
			return false
		}
		b3p, b3r, purity, n := bruteClusterMetrics(blocks)
		m := acc.Metrics()
		return approx(m.B3P, b3p) && approx(m.B3R, b3r) &&
			approx(m.Purity, purity) && m.Instances == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestAccumulatorScratchReuse pins the streaming contract: folding many
// blocks through one accumulator allocates only the first block's
// scratch maps (the layer must not allocate per block at corpus scale).
func TestAccumulatorScratchReuse(t *testing.T) {
	var acc Accumulator
	blk := make([]Instance, 64)
	for i := range blk {
		blk[i] = Instance{Cluster: i % 7, Truth: i % 5}
	}
	acc.AddBlock(blk) // warm the scratch
	allocs := testing.AllocsPerRun(100, func() { acc.AddBlock(blk) })
	if allocs > 1 { // map-internal rehash headroom; steady state is 0
		t.Fatalf("AddBlock allocates %.1f/op in steady state, want ~0", allocs)
	}
}

func TestAccumulatorMerge(t *testing.T) {
	blkA := []Instance{{Cluster: 0, Truth: 1}, {Cluster: 0, Truth: 1}, {Cluster: 1, Truth: 2}}
	blkB := []Instance{{Cluster: 0, Truth: 1}, {Cluster: 0, Truth: 2}, {Cluster: 2, Truth: -1}}
	var whole Accumulator
	whole.AddBlock(blkA)
	whole.AddBlock(blkB)
	var shardA, shardB Accumulator
	shardA.AddBlock(blkA)
	shardB.AddBlock(blkB)
	shardA.Merge(&shardB)
	if shardA.Metrics() != whole.Metrics() {
		t.Fatalf("merged=%+v whole=%+v", shardA.Metrics(), whole.Metrics())
	}
}

// TestAddNameExcludesUnlabeled locks the PairCounts-level exclusion in:
// unlabeled instances contribute no pairs at all.
func TestAddNameExcludesUnlabeled(t *testing.T) {
	var withUnlabeled, labeledOnly PairCounts
	withUnlabeled.AddName([]Instance{
		{Cluster: 0, Truth: 1}, {Cluster: 0, Truth: 1},
		{Cluster: 0, Truth: -1}, {Cluster: 1, Truth: -1}, {Cluster: 2, Truth: -1},
	})
	labeledOnly.AddName([]Instance{
		{Cluster: 0, Truth: 1}, {Cluster: 0, Truth: 1},
	})
	if withUnlabeled != labeledOnly {
		t.Fatalf("unlabeled slots moved pairwise counts: %+v vs %+v", withUnlabeled, labeledOnly)
	}
	// Two unlabeled + one labeled: fewer than 2 labeled instances → no
	// pairs, even though len(instances) ≥ 2.
	var pc PairCounts
	pc.AddName([]Instance{{Cluster: 0, Truth: 3}, {Cluster: 0, Truth: -1}, {Cluster: 0, Truth: -1}})
	if pc.Total() != 0 {
		t.Fatalf("pairs manufactured from unlabeled slots: %+v", pc)
	}
}
