// Package eval computes the pairwise micro evaluation metrics of §VI-A2.
//
// For every ambiguous name, each paper mentioning that name is an
// instance carrying a predicted cluster (who the disambiguator says wrote
// it) and a ground-truth author. All instance pairs of the same name are
// classified as TP (predicted together, truly together), FP (predicted
// together, truly apart), FN, or TN; counts are summed over all names
// before computing MicroA/MicroP/MicroR/MicroF — the paper's way of
// keeping prolific names from dominating per-name averages.
package eval

import (
	"fmt"
	"time"
)

// Instance is one (paper, name) occurrence with its predicted cluster
// and ground-truth author. Cluster IDs only need to be consistent within
// one AddName call; Truth IDs likewise.
type Instance struct {
	Cluster int
	Truth   int
}

// PairCounts accumulates pairwise confusion counts across names.
type PairCounts struct {
	TP, FP, FN, TN int64
}

// AddName folds the instance pairs of one name into the counts in
// O(n + cells) using the cell-counting identity: with n_ct = instances in
// (cluster c, truth t),
//
//	TP        = Σ_ct C(n_ct, 2)
//	TP+FP     = Σ_c  C(n_c, 2)
//	TP+FN     = Σ_t  C(n_t, 2)
//	total     = C(n, 2)
//
// Instances with Truth < 0 (unlabeled slots, bib.UnknownAuthor) carry no
// ground-truth signal and are excluded entirely — they contribute to no
// cell of the confusion table, so partially labeled corpora score
// exactly like their labeled subset.
func (pc *PairCounts) AddName(instances []Instance) {
	type cell struct{ c, t int }
	cells := make(map[cell]int64)
	byCluster := make(map[int]int64)
	byTruth := make(map[int]int64)
	var n int64
	for _, in := range instances {
		if in.Truth < 0 {
			continue
		}
		cells[cell{in.Cluster, in.Truth}]++
		byCluster[in.Cluster]++
		byTruth[in.Truth]++
		n++
	}
	if n < 2 {
		return
	}
	var tp, samePred, sameTruth int64
	for _, k := range cells {
		tp += choose2(k)
	}
	for _, k := range byCluster {
		samePred += choose2(k)
	}
	for _, k := range byTruth {
		sameTruth += choose2(k)
	}
	total := choose2(n)
	pc.TP += tp
	pc.FP += samePred - tp
	pc.FN += sameTruth - tp
	pc.TN += total - samePred - sameTruth + tp
}

func choose2(n int64) int64 { return n * (n - 1) / 2 }

// Total returns the number of counted pairs.
func (pc PairCounts) Total() int64 { return pc.TP + pc.FP + pc.FN + pc.TN }

// Metrics holds the four micro measurements of §VI-A2.
type Metrics struct {
	MicroA, MicroP, MicroR, MicroF float64
}

// Metrics converts counts into MicroA/P/R/F. Empty denominators yield 0.
func (pc PairCounts) Metrics() Metrics {
	var m Metrics
	if t := pc.Total(); t > 0 {
		m.MicroA = float64(pc.TP+pc.TN) / float64(t)
	}
	if d := pc.TP + pc.FP; d > 0 {
		m.MicroP = float64(pc.TP) / float64(d)
	}
	if d := pc.TP + pc.FN; d > 0 {
		m.MicroR = float64(pc.TP) / float64(d)
	}
	if pr := m.MicroP + m.MicroR; pr > 0 {
		m.MicroF = 2 * m.MicroP * m.MicroR / pr
	}
	return m
}

// String renders the metrics as the paper's table rows do.
func (m Metrics) String() string {
	return fmt.Sprintf("MicroA=%.4f MicroP=%.4f MicroR=%.4f MicroF=%.4f",
		m.MicroA, m.MicroP, m.MicroR, m.MicroF)
}

// Stopwatch accumulates wall-clock durations over repeated units of work
// (per-name disambiguation in Table V, per-paper assignment in Table VI).
type Stopwatch struct {
	total time.Duration
	n     int
}

// Observe records one unit taking d.
func (s *Stopwatch) Observe(d time.Duration) {
	s.total += d
	s.n++
}

// Time runs fn and records its duration.
func (s *Stopwatch) Time(fn func()) {
	start := time.Now()
	fn()
	s.Observe(time.Since(start))
}

// Average returns the mean duration per unit (0 when nothing observed).
func (s *Stopwatch) Average() time.Duration {
	if s.n == 0 {
		return 0
	}
	return s.total / time.Duration(s.n)
}

// Count returns the number of observed units.
func (s *Stopwatch) Count() int { return s.n }

// TotalDuration returns the accumulated time.
func (s *Stopwatch) TotalDuration() time.Duration { return s.total }
