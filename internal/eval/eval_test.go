package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestPerfectClustering(t *testing.T) {
	var pc PairCounts
	pc.AddName([]Instance{
		{Cluster: 0, Truth: 10}, {Cluster: 0, Truth: 10},
		{Cluster: 1, Truth: 20}, {Cluster: 1, Truth: 20}, {Cluster: 1, Truth: 20},
	})
	m := pc.Metrics()
	if m.MicroA != 1 || m.MicroP != 1 || m.MicroR != 1 || m.MicroF != 1 {
		t.Fatalf("perfect clustering metrics=%v", m)
	}
	// 5 instances → 10 pairs: TP = C(2,2)+C(3,2) = 1+3 = 4, TN = 6.
	if pc.TP != 4 || pc.TN != 6 || pc.FP != 0 || pc.FN != 0 {
		t.Fatalf("counts=%+v", pc)
	}
}

func TestAllSingletons(t *testing.T) {
	// Everything predicted apart while truth says together: pure FN.
	var pc PairCounts
	pc.AddName([]Instance{
		{Cluster: 0, Truth: 1}, {Cluster: 1, Truth: 1}, {Cluster: 2, Truth: 1},
	})
	if pc.FN != 3 || pc.TP != 0 || pc.FP != 0 || pc.TN != 0 {
		t.Fatalf("counts=%+v", pc)
	}
	m := pc.Metrics()
	if m.MicroR != 0 || m.MicroP != 0 || m.MicroF != 0 {
		t.Fatalf("metrics=%v", m)
	}
}

func TestAllMergedWrongly(t *testing.T) {
	// Everything predicted together while truth says apart: pure FP.
	var pc PairCounts
	pc.AddName([]Instance{
		{Cluster: 0, Truth: 1}, {Cluster: 0, Truth: 2}, {Cluster: 0, Truth: 3},
	})
	if pc.FP != 3 || pc.TP != 0 {
		t.Fatalf("counts=%+v", pc)
	}
}

func TestKnownMixedExample(t *testing.T) {
	// 4 instances: clusters {a,a,b,b}, truth {x,y,x,y}.
	// Pairs: (1,2):pred same, truth diff → FP. (1,3): pred diff, truth same → FN.
	// (1,4): diff/diff → TN. (2,3): diff/diff → TN. (2,4): diff/same → FN.
	// (3,4): same/diff → FP.
	var pc PairCounts
	pc.AddName([]Instance{
		{Cluster: 0, Truth: 1}, {Cluster: 0, Truth: 2},
		{Cluster: 1, Truth: 1}, {Cluster: 1, Truth: 2},
	})
	if pc.TP != 0 || pc.FP != 2 || pc.FN != 2 || pc.TN != 2 {
		t.Fatalf("counts=%+v", pc)
	}
	m := pc.Metrics()
	if math.Abs(m.MicroA-1.0/3) > 1e-12 {
		t.Fatalf("MicroA=%v", m.MicroA)
	}
}

func TestMultipleNamesAccumulate(t *testing.T) {
	var pc PairCounts
	pc.AddName([]Instance{{0, 1}, {0, 1}}) // 1 TP
	pc.AddName([]Instance{{0, 1}, {1, 2}}) // 1 TN
	pc.AddName([]Instance{{5, 9}})         // single instance: nothing
	if pc.TP != 1 || pc.TN != 1 || pc.Total() != 2 {
		t.Fatalf("counts=%+v", pc)
	}
}

// bruteForce recomputes counts pair by pair.
func bruteForce(instances []Instance) PairCounts {
	var pc PairCounts
	for i := 0; i < len(instances); i++ {
		for j := i + 1; j < len(instances); j++ {
			samePred := instances[i].Cluster == instances[j].Cluster
			sameTruth := instances[i].Truth == instances[j].Truth
			switch {
			case samePred && sameTruth:
				pc.TP++
			case samePred && !sameTruth:
				pc.FP++
			case !samePred && sameTruth:
				pc.FN++
			default:
				pc.TN++
			}
		}
	}
	return pc
}

// Property: the cell-counting identity agrees with brute-force pairs.
func TestAddNameMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40)
		ins := make([]Instance, n)
		for i := range ins {
			ins[i] = Instance{Cluster: rng.Intn(5), Truth: rng.Intn(5)}
		}
		var fast PairCounts
		fast.AddName(ins)
		return fast == bruteForce(ins)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsEmpty(t *testing.T) {
	var pc PairCounts
	m := pc.Metrics()
	if m.MicroA != 0 || m.MicroP != 0 || m.MicroR != 0 || m.MicroF != 0 {
		t.Fatalf("empty metrics=%v", m)
	}
}

func TestMetricsString(t *testing.T) {
	m := Metrics{MicroA: 0.8174, MicroP: 0.8608, MicroR: 0.8113, MicroF: 0.8353}
	want := "MicroA=0.8174 MicroP=0.8608 MicroR=0.8113 MicroF=0.8353"
	if m.String() != want {
		t.Fatalf("String()=%q", m.String())
	}
}

func TestStopwatch(t *testing.T) {
	var sw Stopwatch
	sw.Observe(10 * time.Millisecond)
	sw.Observe(30 * time.Millisecond)
	if sw.Count() != 2 {
		t.Fatalf("Count=%d", sw.Count())
	}
	if sw.Average() != 20*time.Millisecond {
		t.Fatalf("Average=%v", sw.Average())
	}
	if sw.TotalDuration() != 40*time.Millisecond {
		t.Fatalf("Total=%v", sw.TotalDuration())
	}
	var empty Stopwatch
	if empty.Average() != 0 {
		t.Fatal("empty average nonzero")
	}
	ran := false
	empty.Time(func() { ran = true })
	if !ran || empty.Count() != 1 {
		t.Fatal("Time did not run/record")
	}
}
