package netstats

import "sort"

// Ego query bounds: hops beyond MaxEgoHops explode to the whole giant
// component on small-world graphs, and MaxEgoVertices bounds the
// response payload regardless of hop count.
const (
	MaxEgoHops     = 8
	MaxEgoVertices = 4096
)

// EgoVertex is one vertex of an ego subgraph, in BFS order (ascending
// hop, ascending ID within a hop — the deterministic frontier order).
type EgoVertex struct {
	ID  int32 `json:"id"`
	Hop int   `json:"hop"`
	// Degree is the vertex's degree in the full graph, not the
	// subgraph.
	Degree int `json:"degree"`
}

// EgoEdge is one induced edge of an ego subgraph, keyed by global IDs
// with U < V, ordered ascending by (U, V).
type EgoEdge struct {
	U      int32 `json:"u"`
	V      int32 `json:"v"`
	Weight int32 `json:"weight"`
}

// EgoGraph is the bounded-BFS neighborhood of one author with its
// induced weighted edges.
type EgoGraph struct {
	Center   int32       `json:"center"`
	Hops     int         `json:"hops"`
	Vertices []EgoVertex `json:"vertices"`
	Edges    []EgoEdge   `json:"edges"`
	// Truncated reports that the MaxEgoVertices cap stopped expansion;
	// the reported subgraph is still internally consistent (every edge
	// joins reported vertices).
	Truncated bool `json:"truncated,omitempty"`
}

// Ego returns the ego subgraph of center bounded by hops (0 returns
// just the center) and the MaxEgoVertices cap, reporting false for a
// dead or out-of-range center. hops above MaxEgoHops is clamped.
func (g *Graph) Ego(center, hops int) (EgoGraph, bool) {
	if !g.Live(center) {
		return EgoGraph{}, false
	}
	if hops < 0 {
		hops = 0
	}
	if hops > MaxEgoHops {
		hops = MaxEgoHops
	}
	eg := EgoGraph{Center: int32(center), Hops: hops}

	// BFS. The frontier is expanded in ascending-ID order (parents are
	// ascending and rows are sorted), so visit order is deterministic.
	hop := map[int32]int{int32(center): 0}
	frontier := []int32{int32(center)}
	for h := 1; h <= hops && len(frontier) > 0; h++ {
		var next []int32
		for _, v := range frontier {
			row, _ := g.row(int(v))
			for _, u := range row {
				if _, seen := hop[u]; seen {
					continue
				}
				if len(hop) >= MaxEgoVertices {
					eg.Truncated = true
					break
				}
				hop[u] = h
				next = append(next, u)
			}
			if eg.Truncated {
				break
			}
		}
		if eg.Truncated {
			break
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		frontier = next
	}

	ids := make([]int32, 0, len(hop))
	for v := range hop {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool {
		hi, hj := hop[ids[i]], hop[ids[j]]
		if hi != hj {
			return hi < hj
		}
		return ids[i] < ids[j]
	})
	eg.Vertices = make([]EgoVertex, len(ids))
	for i, v := range ids {
		eg.Vertices[i] = EgoVertex{ID: v, Hop: hop[v], Degree: g.Degree(int(v))}
	}

	// Induced edges, each reported once with U < V, ascending by (U, V).
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, v := range ids {
		row, w := g.row(int(v))
		for i, u := range row {
			if u <= v {
				continue
			}
			if _, in := hop[u]; in {
				eg.Edges = append(eg.Edges, EgoEdge{U: v, V: u, Weight: w[i]})
			}
		}
	}
	return eg, true
}

// Collaborator is one coauthor ranked by collaboration strength, with
// the two topological features the Amancio et al. line of work uses to
// discriminate homonyms: common-neighbor count and neighborhood
// overlap.
type Collaborator struct {
	ID int32 `json:"id"`
	// SharedPapers is the edge weight: papers the two authors wrote
	// together.
	SharedPapers    int32 `json:"shared_papers"`
	CommonNeighbors int   `json:"common_neighbors"`
	// Overlap is |N(u)∩N(v)| / (|N(u)∪N(v)| − 2): the Jaccard overlap
	// of the endpoint neighborhoods with the endpoints themselves
	// excluded from the union; 0 when the union is only the endpoints.
	Overlap float64 `json:"overlap"`
}

// TopCollaborators returns the k strongest coauthors of id — ordered
// by shared-paper count descending, ties broken by ascending ID — and
// reports false for a dead or out-of-range id. k ≤ 0 returns every
// coauthor.
func (g *Graph) TopCollaborators(id, k int) ([]Collaborator, bool) {
	if !g.Live(id) {
		return nil, false
	}
	row, w := g.row(id)
	out := make([]Collaborator, len(row))
	for i, u := range row {
		urow, _ := g.row(int(u))
		common := intersectCount(row, urow)
		union := len(row) + len(urow) - common - 2 // endpoints excluded
		c := Collaborator{ID: u, SharedPapers: w[i], CommonNeighbors: common}
		if union > 0 {
			c.Overlap = float64(common) / float64(union)
		}
		out[i] = c
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SharedPapers != out[j].SharedPapers {
			return out[i].SharedPapers > out[j].SharedPapers
		}
		return out[i].ID < out[j].ID
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out, true
}
