package netstats

import (
	"sort"

	"iuad/internal/sched"
	"iuad/internal/stats"
)

// maxReportedSizes bounds the per-component / per-community size lists
// embedded in JSON-serialized stats: real collaboration networks have
// one giant component plus thousands of singletons, and the tail
// carries no information the count doesn't.
const maxReportedSizes = 32

// DegreeBucket is one point of the degree distribution: Count live
// vertices have exactly Degree live coauthors.
type DegreeBucket struct {
	Degree int `json:"degree"`
	Count  int `json:"count"`
}

// NetworkStats is the whole-graph topology summary served by
// Service.Network. All fields are computed at compile time from
// integer aggregates reduced in ascending vertex order, so they are
// byte-identical across runs and worker counts.
type NetworkStats struct {
	Epoch        uint64 `json:"epoch"`
	Authors      int    `json:"authors"` // live vertices
	DeadVertices int    `json:"dead_vertices,omitempty"`
	Edges        int    `json:"edges"`
	// TotalWeight sums edge weights: coauthored (author, author, paper)
	// triples counted once per pair.
	TotalWeight int64   `json:"total_weight"`
	Density     float64 `json:"density"`
	Isolated    int     `json:"isolated"`

	Components               int     `json:"components"`
	LargestComponent         int     `json:"largest_component"`
	LargestComponentFraction float64 `json:"largest_component_fraction"`
	// ComponentSizes is descending, truncated to maxReportedSizes.
	ComponentSizes []int `json:"component_sizes"`

	// AvgClustering is the Watts–Strogatz average of per-vertex local
	// clustering coefficients over live vertices (degree < 2 counts 0).
	AvgClustering float64 `json:"avg_clustering"`
	Triangles     int64   `json:"triangles"`

	MaxDegree       int            `json:"max_degree"`
	DegreeHistogram []DegreeBucket `json:"degree_histogram"`
	// DegreeSlope is the least-squares log-log slope of the degree
	// distribution (degrees ≥ 1) — the scale-free shape check of
	// §IV-A; 0 when the fit is degenerate.
	DegreeSlope float64 `json:"degree_slope"`
}

// Clustering is one vertex's local clustering summary.
type Clustering struct {
	ID        int32 `json:"id"`
	Degree    int   `json:"degree"`
	Triangles int   `json:"triangles"`
	// Coefficient is 2·Triangles / (Degree·(Degree−1)); 0 for degree
	// < 2.
	Coefficient float64 `json:"coefficient"`
}

// Stats returns the precomputed whole-graph summary. The value is
// computed once during Compile, so repeat calls are a struct copy —
// the ≥10× epoch-cache win BENCH_network.json pins.
func (g *Graph) Stats() NetworkStats { return g.stats }

// ClusteringOf returns the local clustering summary of one vertex,
// reporting false for dead or out-of-range IDs.
func (g *Graph) ClusteringOf(id int) (Clustering, bool) {
	if !g.Live(id) {
		return Clustering{}, false
	}
	tri := g.trianglesAt(id)
	c := Clustering{ID: int32(id), Degree: g.Degree(id), Triangles: tri}
	if c.Degree >= 2 {
		c.Coefficient = 2 * float64(tri) / float64(c.Degree*(c.Degree-1))
	}
	return c, true
}

// trianglesAt counts triangles through vertex id: each common neighbor
// of id and one of its neighbors closes one triangle, and the sum over
// neighbors counts every triangle twice.
func (g *Graph) trianglesAt(id int) int {
	row, _ := g.row(id)
	sum := 0
	for _, u := range row {
		urow, _ := g.row(int(u))
		sum += intersectCount(row, urow)
	}
	return sum / 2
}

func computeStats(g *Graph, workers int) NetworkStats {
	st := NetworkStats{
		Epoch:        g.epoch,
		Authors:      g.live,
		DeadVertices: g.n - g.live,
		Edges:        g.edges,
		TotalWeight:  g.weight,
	}
	if g.live >= 2 {
		st.Density = 2 * float64(g.edges) / (float64(g.live) * float64(g.live-1))
	}

	// Connected components: iterative DFS in ascending start order.
	comp := make([]int32, g.n)
	for i := range comp {
		comp[i] = -1
	}
	var sizes []int
	var stack []int32
	for start := 0; start < g.n; start++ {
		if g.dead[start] || comp[start] >= 0 {
			continue
		}
		id := int32(len(sizes))
		size := 0
		stack = append(stack[:0], int32(start))
		comp[start] = id
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			row, _ := g.row(int(v))
			for _, u := range row {
				if comp[u] < 0 {
					comp[u] = id
					stack = append(stack, u)
				}
			}
		}
		sizes = append(sizes, size)
	}
	st.Components = len(sizes)
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	if len(sizes) > 0 {
		st.LargestComponent = sizes[0]
		st.LargestComponentFraction = float64(sizes[0]) / float64(g.live)
	}
	if len(sizes) > maxReportedSizes {
		sizes = sizes[:maxReportedSizes]
	}
	st.ComponentSizes = sizes

	// Degree histogram + power-law slope; isolated = degree-0 live
	// vertices.
	hist := map[int]int{}
	fit := stats.NewHistogram(nil)
	for id := 0; id < g.n; id++ {
		if g.dead[id] {
			continue
		}
		d := g.Degree(id)
		hist[d]++
		fit.Add(d)
		if d == 0 {
			st.Isolated++
		}
		if d > st.MaxDegree {
			st.MaxDegree = d
		}
	}
	degrees := make([]int, 0, len(hist))
	for d := range hist {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	st.DegreeHistogram = make([]DegreeBucket, len(degrees))
	for i, d := range degrees {
		st.DegreeHistogram[i] = DegreeBucket{Degree: d, Count: hist[d]}
	}
	if slope, _, err := fit.PowerLawFit(); err == nil {
		st.DegreeSlope = slope
	}

	// Average clustering: per-vertex coefficients fill disjoint slots
	// in parallel; the float sum reduces serially in ascending vertex
	// order so the result is bit-stable for every worker count.
	if g.live > 0 {
		coef := make([]float64, g.n)
		tris := make([]int64, g.n)
		sched.ForEach(workers, g.n, func(id int) {
			if g.dead[id] || g.Degree(id) < 2 {
				return
			}
			t := g.trianglesAt(id)
			tris[id] = int64(t)
			d := g.Degree(id)
			coef[id] = 2 * float64(t) / float64(d*(d-1))
		})
		sum := 0.0
		for id := 0; id < g.n; id++ {
			sum += coef[id]
			st.Triangles += tris[id]
		}
		st.Triangles /= 3 // each triangle counted at all three corners
		st.AvgClustering = sum / float64(g.live)
	}
	return st
}
