package netstats

import (
	"sort"
	"sync"
)

// maxLabelRounds caps label-propagation sweeps; weighted LPA with a
// fixed sweep order converges in a handful of rounds on collaboration
// networks, and the cap bounds adversarial oscillation.
const maxLabelRounds = 64

// Communities is the deterministic label-propagation partition of one
// epoch's live vertices.
type Communities struct {
	Epoch uint64 `json:"epoch"`
	Count int    `json:"count"`
	// Rounds is the number of full sweeps executed; Converged reports
	// that the final sweep changed no label (false only if
	// maxLabelRounds was hit first).
	Rounds    int  `json:"rounds"`
	Converged bool `json:"converged"`
	// Sizes is descending, truncated to maxReportedSizes (Count is the
	// untruncated total).
	Sizes []int `json:"sizes"`
	// Labels maps every global vertex ID to its community index —
	// communities are numbered by descending size, ties broken by
	// smallest member ID — or −1 for dead vertices. Shared; do not
	// mutate.
	Labels []int32 `json:"-"`
}

type communitiesOnce struct {
	once sync.Once
	res  *Communities
}

// Communities returns the epoch's community partition, computing it on
// first call (under a sync.Once, so concurrent callers never observe a
// half-built result) and serving the cached pointer afterwards.
//
// Determinism contract: labels are seeded with the interned vertex ID,
// sweeps visit vertices in ascending ID order updating in place, each
// vertex adopts the label with the highest incident edge-weight sum
// with ties broken by the smallest label value, and the sweep loop is
// serial — so the partition is byte-identical across runs, worker
// counts, and shard counts for the same epoch.
func (g *Graph) Communities() *Communities {
	g.comm.once.Do(func() { g.comm.res = g.computeCommunities() })
	return g.comm.res
}

func (g *Graph) computeCommunities() *Communities {
	res := &Communities{Epoch: g.epoch}
	labels := make([]int32, g.n)
	for i := range labels {
		labels[i] = int32(i)
	}
	tally := map[int32]int64{}
	for res.Rounds < maxLabelRounds {
		res.Rounds++
		changed := 0
		for v := 0; v < g.n; v++ {
			if g.dead[v] {
				continue
			}
			row, w := g.row(v)
			if len(row) == 0 {
				continue
			}
			clear(tally)
			for i, u := range row {
				tally[labels[u]] += int64(w[i])
			}
			// Pick the winner by walking the row (not the map) so the
			// scan order is deterministic.
			best, bestW := labels[v], int64(-1)
			for _, u := range row {
				l := labels[u]
				wt, seen := tally[l]
				if !seen {
					continue // already consumed below
				}
				if wt > bestW || (wt == bestW && l < best) {
					best, bestW = l, wt
				}
				delete(tally, l)
			}
			if best != labels[v] {
				labels[v] = best
				changed++
			}
		}
		if changed == 0 {
			res.Converged = true
			break
		}
	}

	// Canonicalize: communities numbered by descending size, ties by
	// smallest member ID; dead vertices get −1.
	type comm struct {
		label int32
		size  int
		min   int32
	}
	byLabel := map[int32]*comm{}
	for v := 0; v < g.n; v++ {
		if g.dead[v] {
			continue
		}
		c, ok := byLabel[labels[v]]
		if !ok {
			c = &comm{label: labels[v], min: int32(v)}
			byLabel[labels[v]] = c
		}
		c.size++
	}
	comms := make([]*comm, 0, len(byLabel))
	for _, c := range byLabel {
		comms = append(comms, c)
	}
	sort.Slice(comms, func(i, j int) bool {
		if comms[i].size != comms[j].size {
			return comms[i].size > comms[j].size
		}
		return comms[i].min < comms[j].min
	})
	index := make(map[int32]int32, len(comms))
	res.Count = len(comms)
	res.Sizes = make([]int, 0, min(len(comms), maxReportedSizes))
	for i, c := range comms {
		index[c.label] = int32(i)
		if i < maxReportedSizes {
			res.Sizes = append(res.Sizes, c.size)
		}
	}
	res.Labels = make([]int32, g.n)
	for v := 0; v < g.n; v++ {
		if g.dead[v] {
			res.Labels[v] = -1
		} else {
			res.Labels[v] = index[labels[v]]
		}
	}
	return res
}
