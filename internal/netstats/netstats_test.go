package netstats

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"testing"

	"iuad/internal/core"
	"iuad/internal/synth"
)

// testPipeline fits a small synthetic corpus once per (seed, workers).
func testPipeline(t *testing.T, seed int64, workers int) *core.Pipeline {
	t.Helper()
	scfg := synth.DefaultConfig()
	scfg.Seed = seed
	scfg.Authors = 120
	scfg.Communities = 6
	d := synth.Generate(scfg)
	cfg := core.DefaultConfig()
	cfg.Workers = workers
	cfg.Embedding.Dim = 16
	cfg.Embedding.Epochs = 2
	cfg.SampleRate = 0.5
	pl, err := core.Run(d.Corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func testView(t *testing.T, seed int64, workers int) *core.View {
	t.Helper()
	return core.NewViewPublisher(testPipeline(t, seed, workers), 0).Current()
}

// fingerprint serializes everything a Graph can answer into bytes, so
// determinism tests can demand byte-identity rather than approximate
// equality.
func fingerprint(g *Graph) []byte {
	var buf bytes.Buffer
	w := func(vs ...any) {
		for _, v := range vs {
			if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
				panic(err)
			}
		}
	}
	w(g.epoch, int64(g.n), int64(g.live), int64(g.edges), g.weight)
	w(g.off, g.adj, g.w)
	st := g.Stats()
	fmt.Fprintf(&buf, "%+v|%x|%x|%x", st, st.Density, st.AvgClustering, st.DegreeSlope)
	c := g.Communities()
	fmt.Fprintf(&buf, "|comm %d %d %v %v", c.Count, c.Rounds, c.Converged, c.Sizes)
	w(c.Labels)
	return buf.Bytes()
}

// TestCompileInvariants checks the structural contracts of the CSR:
// sorted symmetric rows with positive weights, edge and component
// accounting that sums to the live-vertex count, and density/histogram
// sanity.
func TestCompileInvariants(t *testing.T) {
	v := testView(t, 42, 2)
	g := Compile(v, 2)

	if g.Epoch() != v.Epoch() {
		t.Fatalf("graph epoch %d, view epoch %d", g.Epoch(), v.Epoch())
	}
	if g.n != v.NumVertices() || g.live != g.n {
		t.Fatalf("vertices %d live %d, view has %d (no dead expected)", g.n, g.live, v.NumVertices())
	}
	total := 0
	for id := 0; id < g.n; id++ {
		row, wts := g.row(id)
		total += len(row)
		for i, u := range row {
			if i > 0 && row[i-1] >= u {
				t.Fatalf("vertex %d row not strictly ascending at %d", id, i)
			}
			if wts[i] < 1 {
				t.Fatalf("edge (%d,%d) weight %d < 1", id, u, wts[i])
			}
			// Symmetry: the reverse entry exists with the same weight.
			urow, uw := g.row(int(u))
			j := sort.Search(len(urow), func(k int) bool { return urow[k] >= int32(id) })
			if j >= len(urow) || urow[j] != int32(id) || uw[j] != wts[i] {
				t.Fatalf("edge (%d,%d) weight %d has no symmetric entry", id, u, wts[i])
			}
		}
	}
	if total != 2*g.edges {
		t.Fatalf("row lengths sum to %d, want 2·edges = %d", total, 2*g.edges)
	}

	st := g.Stats()
	if st.Edges != g.edges || st.Authors != g.live {
		t.Fatalf("stats %+v out of sync with graph", st)
	}
	if st.Density < 0 || st.Density > 1 {
		t.Fatalf("density %v out of [0,1]", st.Density)
	}
	sum := 0
	for _, b := range st.DegreeHistogram {
		sum += b.Count
	}
	if sum != g.live {
		t.Fatalf("degree histogram sums to %d, want %d", sum, g.live)
	}
	if st.LargestComponent > g.live || st.Components < 1 {
		t.Fatalf("components %d largest %d implausible for %d live", st.Components, st.LargestComponent, g.live)
	}
	if st.AvgClustering < 0 || st.AvgClustering > 1 {
		t.Fatalf("avg clustering %v out of [0,1]", st.AvgClustering)
	}
}

// TestClusteringMatchesBruteForce cross-checks the merge-join triangle
// count against a quadratic pair scan.
func TestClusteringMatchesBruteForce(t *testing.T) {
	g := Compile(testView(t, 42, 1), 1)
	hasEdge := func(u, v int32) bool {
		row, _ := g.row(int(u))
		j := sort.Search(len(row), func(k int) bool { return row[k] >= v })
		return j < len(row) && row[j] == v
	}
	checked := 0
	for id := 0; id < g.n && checked < 200; id++ {
		row, _ := g.row(id)
		brute := 0
		for i := 0; i < len(row); i++ {
			for j := i + 1; j < len(row); j++ {
				if hasEdge(row[i], row[j]) {
					brute++
				}
			}
		}
		c, ok := g.ClusteringOf(id)
		if !ok {
			t.Fatalf("live vertex %d reported not ok", id)
		}
		if c.Triangles != brute {
			t.Fatalf("vertex %d: %d triangles, brute force %d", id, c.Triangles, brute)
		}
		checked++
	}
}

// TestEgoContract checks the BFS bounds: hops=0 is the center alone,
// radius growth is monotone, every edge joins reported vertices, and
// out-of-range centers report false.
func TestEgoContract(t *testing.T) {
	g := Compile(testView(t, 42, 1), 1)
	center := -1
	for id := 0; id < g.n; id++ {
		if g.Degree(id) > 0 {
			center = id
			break
		}
	}
	if center < 0 {
		t.Fatal("no connected vertex in fixture")
	}

	eg, ok := g.Ego(center, 0)
	if !ok || len(eg.Vertices) != 1 || len(eg.Edges) != 0 || eg.Vertices[0].ID != int32(center) {
		t.Fatalf("hops=0 ego = %+v, want just the center", eg)
	}
	prev := 1
	for hops := 1; hops <= 3; hops++ {
		eg, ok = g.Ego(center, hops)
		if !ok {
			t.Fatalf("hops=%d reported not ok", hops)
		}
		if len(eg.Vertices) < prev {
			t.Fatalf("hops=%d shrank ego: %d < %d vertices", hops, len(eg.Vertices), prev)
		}
		prev = len(eg.Vertices)
		in := map[int32]bool{}
		for _, ev := range eg.Vertices {
			if ev.Hop > hops {
				t.Fatalf("vertex %d at hop %d > %d", ev.ID, ev.Hop, hops)
			}
			in[ev.ID] = true
		}
		for _, e := range eg.Edges {
			if !in[e.U] || !in[e.V] || e.U >= e.V || e.Weight < 1 {
				t.Fatalf("bad induced edge %+v", e)
			}
		}
	}
	if _, ok := g.Ego(-1, 1); ok {
		t.Fatal("negative center reported ok")
	}
	if _, ok := g.Ego(g.n, 1); ok {
		t.Fatal("out-of-range center reported ok")
	}
}

// TestTopCollaborators checks ordering (weight descending, ID
// ascending within ties), the k clamp, and the overlap range.
func TestTopCollaborators(t *testing.T) {
	g := Compile(testView(t, 42, 1), 1)
	for id := 0; id < g.n; id++ {
		all, ok := g.TopCollaborators(id, 0)
		if !ok {
			t.Fatalf("live vertex %d reported not ok", id)
		}
		if len(all) != g.Degree(id) {
			t.Fatalf("vertex %d: %d collaborators, degree %d", id, len(all), g.Degree(id))
		}
		for i := 1; i < len(all); i++ {
			a, b := all[i-1], all[i]
			if a.SharedPapers < b.SharedPapers ||
				(a.SharedPapers == b.SharedPapers && a.ID >= b.ID) {
				t.Fatalf("vertex %d: collaborators out of order at %d: %+v then %+v", id, i, a, b)
			}
		}
		for _, c := range all {
			if c.Overlap < 0 || c.Overlap > 1 {
				t.Fatalf("vertex %d: overlap %v out of [0,1]", id, c.Overlap)
			}
		}
		if len(all) > 2 {
			topk, _ := g.TopCollaborators(id, 2)
			if len(topk) != 2 || topk[0] != all[0] || topk[1] != all[1] {
				t.Fatalf("vertex %d: k=2 prefix mismatch", id)
			}
		}
	}
}

// TestCommunitiesContract checks the partition invariants: every live
// vertex is labeled, labels are dense community indexes ordered by
// descending size, and sizes sum to the live count.
func TestCommunitiesContract(t *testing.T) {
	g := Compile(testView(t, 42, 1), 1)
	c := g.Communities()
	if !c.Converged {
		t.Fatalf("label propagation did not converge in %d rounds", c.Rounds)
	}
	counts := make([]int, c.Count)
	for id, l := range c.Labels {
		if l < 0 || int(l) >= c.Count {
			t.Fatalf("vertex %d has label %d outside [0,%d)", id, l, c.Count)
		}
		counts[l]++
	}
	sum := 0
	for i, n := range counts {
		if n == 0 {
			t.Fatalf("community %d is empty", i)
		}
		sum += n
	}
	if sum != g.live {
		t.Fatalf("community sizes sum to %d, want %d", sum, g.live)
	}
	for i := 1; i < len(c.Sizes); i++ {
		if c.Sizes[i] > c.Sizes[i-1] {
			t.Fatalf("sizes not descending at %d: %v", i, c.Sizes)
		}
	}
	for i := 0; i < len(c.Sizes) && i < len(counts); i++ {
		if c.Sizes[i] != counts[i] {
			t.Fatalf("reported size[%d]=%d, recounted %d", i, c.Sizes[i], counts[i])
		}
	}
	if g.Communities() != c {
		t.Fatal("second Communities() call returned a different pointer")
	}
}

// TestCompileDeterministic pins the determinism contract the CI
// analytics job enforces: compiling the same epoch across 3 runs ×
// workers {1,2} — stats, CSR and Communities alike — produces
// byte-identical results.
func TestCompileDeterministic(t *testing.T) {
	var want []byte
	for run := 0; run < 3; run++ {
		for _, workers := range []int{1, 2} {
			v := testView(t, 42, workers)
			fp := fingerprint(Compile(v, workers))
			if want == nil {
				want = fp
				continue
			}
			if !bytes.Equal(fp, want) {
				t.Fatalf("run %d workers %d: analytics diverge from first run", run, workers)
			}
		}
	}
}

// TestCacheEpochKeyed checks the cache contract: same epoch → same
// pointer via the lock-free hit path; a different view epoch → miss +
// rebuild; racing readers on one epoch coalesce into a single compile.
func TestCacheEpochKeyed(t *testing.T) {
	pl := testPipeline(t, 42, 1)
	vp := core.NewViewPublisher(pl, 0)
	v0 := vp.Current()
	c := NewCache(1)

	g0 := c.For(v0)
	if st := c.Stats(); st.Hits != 0 || st.Misses != 1 || st.Rebuilds != 1 || !st.Cached || st.Epoch != v0.Epoch() {
		t.Fatalf("after first For: %+v", st)
	}
	const readers, per = 8, 50
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if g := c.For(v0); g != g0 {
					t.Error("hit returned a different graph")
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := c.Stats(); st.Hits != readers*per || st.Rebuilds != 1 {
		t.Fatalf("after %d hot reads: %+v", readers*per, st)
	}
}
