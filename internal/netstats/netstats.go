// Package netstats is the per-epoch collaboration-network analytics
// engine behind Service.Network/Ego/TopCollaborators/Clustering/
// Communities: the disambiguated graph is the paper's product, and this
// package turns each published epoch into a queryable, immutable
// weighted CSR.
//
// A Graph is compiled lazily from a published core.View — never from
// the mutable pipeline — so analytics answered mid-ingest are exactly
// the analytics of the epoch the reader loaded, and recompiling from
// the same epoch is bit-identical. Edge weights are shared-paper
// counts (the merge-join intersection size of the endpoints' sorted
// paper sets), the weighted-collaboration measure the bottom-up
// reconstruction exists to expose. Vertices lost to a partial snapshot
// recovery (dead vertices: AuthorName reports false) keep their global
// IDs but carry empty rows and are excluded from every statistic.
//
// Determinism contract: every query on a Graph — including the
// parallel compile itself and label-propagation Communities — returns
// byte-identical results for every worker count and across runs.
// Parallel stages only ever write disjoint per-vertex slots; every
// reduction runs serially in ascending vertex order; community labels
// are seeded and tie-broken by the interned vertex ID.
//
// Immutability contract: once Compile returns, no reachable state of
// the Graph is ever written again (the lazily computed Communities
// result is built under a sync.Once before its pointer escapes), so
// any number of goroutines may query one Graph without synchronization
// — the property the epoch-keyed Cache relies on to serve repeat
// queries off one atomic load.
package netstats

import (
	"iuad/internal/bib"
	"iuad/internal/core"
	"iuad/internal/sched"
)

// Graph is one epoch's immutable weighted collaboration network in CSR
// form, indexed by global vertex ID (the IDs the serving surface and
// the spine's routing columns use).
type Graph struct {
	epoch  uint64
	n      int // vertex-ID space, including dead vertices
	live   int // vertices that answer queries
	edges  int // undirected edges between live vertices
	weight int64

	off  []int32 // CSR row offsets, len n+1
	adj  []int32 // neighbor global IDs, ascending within each row
	w    []int32 // shared-paper count per adjacency entry
	dead []bool  // lost to partial recovery; empty rows

	stats NetworkStats
	comm  communitiesOnce
}

// Epoch returns the publish epoch this graph was compiled from.
func (g *Graph) Epoch() uint64 { return g.epoch }

// NumVertices returns the vertex-ID space size (dead vertices
// included, so IDs are interchangeable with the serving surface's).
func (g *Graph) NumVertices() int { return g.n }

// Live reports whether id is a live, queryable vertex.
func (g *Graph) Live(id int) bool {
	return id >= 0 && id < g.n && !g.dead[id]
}

// Degree returns the live degree of id (dead vertices report 0).
func (g *Graph) Degree(id int) int {
	if id < 0 || id >= g.n {
		return 0
	}
	return int(g.off[id+1] - g.off[id])
}

// row returns the adjacency and weight row of id; the slices are
// shared with the graph and must not be mutated.
func (g *Graph) row(id int) (adj, w []int32) {
	lo, hi := g.off[id], g.off[id+1]
	return g.adj[lo:hi], g.w[lo:hi]
}

// Compile builds the analytics graph of one published view. It reads
// only the view's immutable state, so it is safe to run concurrently
// with ingest, and its output is byte-identical for every workers
// value (sched.Workers semantics: n ≤ 0 means one per logical CPU).
func Compile(v *core.View, workers int) *Graph {
	n := v.NumVertices()
	g := &Graph{epoch: v.Epoch(), n: n, dead: make([]bool, n)}

	// Pass 1 (serial): liveness, then filtered degrees → row offsets.
	// Adjacency rows are the view's shared slices; nothing is copied.
	for id := 0; id < n; id++ {
		if _, ok := v.AuthorName(id); !ok {
			g.dead[id] = true
		} else {
			g.live++
		}
	}
	g.off = make([]int32, n+1)
	total := int32(0)
	for id := 0; id < n; id++ {
		g.off[id] = total
		if g.dead[id] {
			continue
		}
		row, _ := v.Coauthors(id)
		for _, u := range row {
			if !g.dead[u] {
				total++
			}
		}
	}
	g.off[n] = total
	g.adj = make([]int32, total)
	g.w = make([]int32, total)
	g.edges = int(total) / 2

	// Pass 2 (parallel): each vertex fills exactly its own CSR row —
	// disjoint index ranges, so any worker count writes identical
	// bytes. Weights are computed once per direction; the merge-join
	// over the endpoints' sorted paper sets is the same count either
	// way.
	wk := sched.Workers(workers)
	sched.ForEach(wk, n, func(id int) {
		if g.dead[id] {
			return
		}
		papers, _ := v.AuthorPapers(id)
		row, _ := v.Coauthors(id)
		at := g.off[id]
		for _, u := range row {
			if g.dead[u] {
				continue
			}
			up, _ := v.AuthorPapers(int(u))
			g.adj[at] = u
			g.w[at] = int32(intersectPapers(papers, up))
			at++
		}
	})
	for i := range g.w {
		g.weight += int64(g.w[i])
	}
	g.weight /= 2

	g.stats = computeStats(g, wk)
	return g
}

// intersectPapers returns |a ∩ b| for two ascending PaperID slices.
func intersectPapers(a, b []bib.PaperID) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// intersectCount returns |a ∩ b| for two ascending int32 slices (CSR
// adjacency rows).
func intersectCount(a, b []int32) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
