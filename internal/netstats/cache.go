package netstats

import (
	"sync"
	"sync/atomic"
	"time"

	"iuad/internal/core"
)

// CacheStats is the analytics-cache accounting served by /metrics: a
// hit is a query answered off the atomic pointer with no lock; a miss
// is a query that arrived with a view the cache had not compiled yet;
// a rebuild is an actual compile (concurrent misses on one epoch
// coalesce into a single rebuild).
type CacheStats struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Rebuilds int64 `json:"rebuilds"`
	// CompileNsTotal accrues wall time spent compiling graphs.
	CompileNsTotal int64 `json:"compile_ns_total"`
	// Epoch is the epoch of the currently cached graph; Cached is
	// false before the first compile (epoch 0 is a valid epoch).
	Epoch  uint64 `json:"epoch"`
	Cached bool   `json:"cached"`
}

// Cache is the epoch-keyed analytics cache: one compiled Graph behind
// an atomic pointer. The fast path — a query for the epoch already
// compiled — is one atomic load and one counter increment, no locks,
// so repeat analytics scale like the rest of the read surface. When
// the view's epoch differs, the caller compiles under a mutex (double-
// checked, so a burst of readers racing into a fresh epoch does one
// compile, not N) and the finished graph is swapped in with one store:
// readers never observe a half-built cache.
type Cache struct {
	workers int
	cur     atomic.Pointer[Graph]
	mu      sync.Mutex // serializes compiles

	hits      atomic.Int64
	misses    atomic.Int64
	rebuilds  atomic.Int64
	compileNs atomic.Int64
}

// NewCache returns a cache whose compiles use the given sched worker
// count (≤ 0 means one per logical CPU; the compiled bytes are
// identical either way).
func NewCache(workers int) *Cache {
	return &Cache{workers: workers}
}

// For returns the analytics graph of exactly the given view: callers
// load a view once and query both the serving surface and the
// analytics surface against it, so answers are mutually consistent
// even while ingest publishes later epochs. A reader holding an older
// view than the cache gets a freshly compiled graph for its epoch
// without disturbing the cached newer one.
func (c *Cache) For(v *core.View) *Graph {
	if g := c.cur.Load(); g != nil && g.Epoch() == v.Epoch() {
		c.hits.Add(1)
		return g
	}
	c.misses.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if g := c.cur.Load(); g != nil && g.Epoch() == v.Epoch() {
		return g
	}
	start := time.Now()
	g := Compile(v, c.workers)
	c.compileNs.Add(int64(time.Since(start)))
	c.rebuilds.Add(1)
	if cur := c.cur.Load(); cur == nil || g.Epoch() >= cur.Epoch() {
		c.cur.Store(g)
	}
	return g
}

// Stats returns the cache accounting.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Rebuilds:       c.rebuilds.Load(),
		CompileNsTotal: c.compileNs.Load(),
	}
	if g := c.cur.Load(); g != nil {
		st.Epoch = g.Epoch()
		st.Cached = true
	}
	return st
}
