package baselines

import (
	"testing"

	"iuad/internal/bib"
	"iuad/internal/core"
	"iuad/internal/eval"
	"iuad/internal/synth"
	"iuad/internal/textvec"
)

// twoAuthorCorpus builds a corpus where "Wei Wang" is two clearly
// different authors: one publishes graph papers at KDD with partners
// P1/P2, the other database papers at VLDB with partners Q1/Q2.
func twoAuthorCorpus(t *testing.T) (*bib.Corpus, []bib.PaperID) {
	t.Helper()
	c := bib.NewCorpus(0)
	add := func(title, venue string, year int, truth bib.AuthorID, coauthors ...string) {
		p := bib.Paper{Title: title, Venue: venue, Year: year,
			Authors: append([]string{"Wei Wang"}, coauthors...),
			Truth:   []bib.AuthorID{truth}}
		for range coauthors {
			p.Truth = append(p.Truth, bib.AuthorID(100+len(p.Truth)))
		}
		c.MustAdd(p)
	}
	add("Graph Kernels Alpha", "KDD", 2010, 1, "P One", "P Two")
	add("Graph Kernels Beta", "KDD", 2011, 1, "P One")
	add("Graph Mining Gamma", "KDD", 2012, 1, "P Two", "P One")
	add("Query Joins Alpha", "VLDB", 2010, 2, "Q One", "Q Two")
	add("Query Joins Beta", "VLDB", 2011, 2, "Q One")
	add("Query Index Gamma", "VLDB", 2012, 2, "Q Two", "Q One")
	c.Freeze()
	return c, c.PapersWithName("Wei Wang")
}

// assertSeparates checks the labeling puts papers 0-2 together, 3-5
// together, and the two groups apart.
func assertSeparates(t *testing.T, name string, labels []int) {
	t.Helper()
	if len(labels) != 6 {
		t.Fatalf("%s: %d labels", name, len(labels))
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatalf("%s split author 1: %v", name, labels)
	}
	if labels[3] != labels[4] || labels[4] != labels[5] {
		t.Fatalf("%s split author 2: %v", name, labels)
	}
	if labels[0] == labels[3] {
		t.Fatalf("%s merged the two authors: %v", name, labels)
	}
}

func TestUnsupervisedBaselinesSeparateClearAuthors(t *testing.T) {
	corpus, papers := twoAuthorCorpus(t)
	for _, d := range []Disambiguator{NewANON(1), NewNetE(1), NewGHOST()} {
		labels := d.Cluster(corpus, "Wei Wang", papers)
		assertSeparates(t, d.Name(), labels)
	}
	// Aminer with global embeddings trained on this tiny corpus. It is
	// deliberately conservative (paper: P=0.82, R=0.42), so only require
	// that it never merges across the two true authors.
	emb := core.TrainEmbeddings(corpus, fastEmbedding())
	am := NewAminer(emb, 1)
	labels := am.Cluster(corpus, "Wei Wang", papers)
	for i := 0; i < 3; i++ {
		for j := 3; j < 6; j++ {
			if labels[i] == labels[j] {
				t.Fatalf("Aminer merged the two authors: %v", labels)
			}
		}
	}
}

func fastEmbedding() textvec.Config {
	c := textvec.DefaultConfig()
	c.Dim = 16
	c.Epochs = 4
	c.MinCount = 1
	return c
}

func TestBaselinesDegenerateInputs(t *testing.T) {
	corpus, _ := twoAuthorCorpus(t)
	for _, d := range []Disambiguator{NewANON(1), NewNetE(1), NewGHOST(), NewAminer(nil, 1)} {
		if got := d.Cluster(corpus, "Wei Wang", nil); len(got) != 0 {
			t.Fatalf("%s on empty input: %v", d.Name(), got)
		}
		one := d.Cluster(corpus, "Wei Wang", []bib.PaperID{0})
		if len(one) != 1 || one[0] != 0 {
			t.Fatalf("%s on single paper: %v", d.Name(), one)
		}
	}
}

func TestSupervisedTrainAndCluster(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.Seed = 31
	cfg.Authors = 400
	cfg.Communities = 10
	cfg.RepeatCollabBias = 0.75
	d := synth.Generate(cfg)

	amb := d.AmbiguousNames(2)
	if len(amb) < 8 {
		t.Fatalf("only %d ambiguous names", len(amb))
	}
	// Train on the second half of ambiguous names, evaluate on the first.
	trainNames := amb[len(amb)/2:]
	testNames := amb[:len(amb)/2]

	for _, algo := range []Algo{AdaBoost, GBDT, RandomForest, XGBoost} {
		s, err := TrainSupervised(d.Corpus, trainNames, algo, DefaultTrainingConfig())
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		var pc eval.PairCounts
		for _, name := range testNames {
			papers := d.Corpus.PapersWithName(name)
			labels := s.Cluster(d.Corpus, name, papers)
			ins := make([]eval.Instance, len(papers))
			for i, pid := range papers {
				p := d.Corpus.Paper(pid)
				ins[i] = eval.Instance{
					Cluster: labels[i],
					Truth:   int(p.TruthAt(p.AuthorIndex(name))),
				}
			}
			pc.AddName(ins)
		}
		m := pc.Metrics()
		t.Logf("%v: %v", s.Name(), m)
		if m.MicroF < 0.5 {
			t.Errorf("%v MicroF=%.3f, want ≥0.5 (should beat chance clearly)", algo, m.MicroF)
		}
	}
}

func TestSupervisedNeedsLabels(t *testing.T) {
	c := bib.NewCorpus(0)
	c.MustAdd(bib.Paper{Title: "t", Authors: []string{"A"}})
	c.Freeze()
	if _, err := TrainSupervised(c, []string{"A"}, AdaBoost, DefaultTrainingConfig()); err == nil {
		t.Fatal("unlabeled corpus accepted")
	}
}

func TestAlgoString(t *testing.T) {
	if AdaBoost.String() != "AdaBoost" || XGBoost.String() != "XGBoost" ||
		RandomForest.String() != "RF" || GBDT.String() != "GBDT" {
		t.Fatal("Algo names wrong")
	}
}
