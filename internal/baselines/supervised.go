package baselines

import (
	"fmt"
	"math/rand"

	"iuad/internal/bib"
	"iuad/internal/cluster"
	"iuad/internal/ensemble"
	"iuad/internal/features"
)

// Algo selects the supervised learner (§VI-A3 compares four).
type Algo int

// Supported supervised learners.
const (
	AdaBoost Algo = iota
	GBDT
	RandomForest
	XGBoost
)

func (a Algo) String() string {
	switch a {
	case AdaBoost:
		return "AdaBoost"
	case GBDT:
		return "GBDT"
	case RandomForest:
		return "RF"
	case XGBoost:
		return "XGBoost"
	}
	return fmt.Sprintf("Algo(%d)", int(a))
}

// Supervised wraps a pairwise same-author classifier: each paper pair of
// a name is classified, and papers are grouped by the transitive closure
// of positive predictions — the standard pairwise-then-cluster protocol.
type Supervised struct {
	algo Algo
	clf  ensemble.Classifier
	ex   *features.Extractor
	// Workers parallelizes the HAC distance-matrix fill over the
	// precomputed probability matrix (≤1 = serial).
	Workers int
}

// TrainingConfig controls supervised training-set assembly.
type TrainingConfig struct {
	// MaxPairsPerName caps pairs sampled per training name.
	MaxPairsPerName int
	Seed            int64
}

// DefaultTrainingConfig bounds per-name pair explosion.
func DefaultTrainingConfig() TrainingConfig {
	return TrainingConfig{MaxPairsPerName: 400, Seed: 1}
}

// TrainSupervised fits a pairwise classifier from ground-truth labels on
// trainNames (which must be disjoint from the evaluation names). The
// corpus must be labeled.
func TrainSupervised(corpus *bib.Corpus, trainNames []string, algo Algo, cfg TrainingConfig) (*Supervised, error) {
	if !corpus.Labeled() {
		return nil, fmt.Errorf("baselines: supervised training needs a labeled corpus")
	}
	if cfg.MaxPairsPerName <= 0 {
		cfg.MaxPairsPerName = 400
	}
	ex := features.NewExtractor(corpus)
	rng := rand.New(rand.NewSource(cfg.Seed))
	var x [][]float64
	var y []bool
	for _, name := range trainNames {
		papers := corpus.PapersWithName(name)
		if len(papers) < 2 {
			continue
		}
		type pair struct{ a, b int }
		var pairs []pair
		for i := 0; i < len(papers); i++ {
			for j := i + 1; j < len(papers); j++ {
				pairs = append(pairs, pair{i, j})
			}
		}
		if len(pairs) > cfg.MaxPairsPerName {
			rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
			pairs = pairs[:cfg.MaxPairsPerName]
		}
		for _, pr := range pairs {
			pa, pb := papers[pr.a], papers[pr.b]
			x = append(x, ex.PairFeatures(pa, pb, name))
			y = append(y, sameAuthor(corpus, pa, pb, name))
		}
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("baselines: no training pairs from %d names", len(trainNames))
	}
	x, y = balance(x, y, rng)
	s := &Supervised{algo: algo, ex: ex}
	switch algo {
	case AdaBoost:
		s.clf = ensemble.TrainAdaBoost(x, y, ensemble.AdaConfig{Rounds: 60, StumpDepth: 2})
	case GBDT:
		s.clf = ensemble.TrainBoost(x, y, ensemble.DefaultGBDTConfig())
	case RandomForest:
		s.clf = ensemble.TrainForest(x, y, ensemble.ForestConfig{Trees: 50, MaxDepth: 8, Seed: cfg.Seed})
	case XGBoost:
		s.clf = ensemble.TrainBoost(x, y, ensemble.DefaultXGBConfig())
	default:
		return nil, fmt.Errorf("baselines: unknown algo %v", algo)
	}
	return s, nil
}

// balance downsamples the majority class to a 1:1 ratio. Without it the
// heavily positive-skewed pair distribution teaches the classifiers to
// answer "same author" always, and the transitive closure then merges
// whole names into one cluster.
func balance(x [][]float64, y []bool, rng *rand.Rand) ([][]float64, []bool) {
	var posIdx, negIdx []int
	for i, yi := range y {
		if yi {
			posIdx = append(posIdx, i)
		} else {
			negIdx = append(negIdx, i)
		}
	}
	if len(posIdx) == 0 || len(negIdx) == 0 {
		return x, y
	}
	major, minor := posIdx, negIdx
	if len(negIdx) > len(posIdx) {
		major, minor = negIdx, posIdx
	}
	rng.Shuffle(len(major), func(i, j int) { major[i], major[j] = major[j], major[i] })
	keep := append(append([]int(nil), minor...), major[:len(minor)]...)
	bx := make([][]float64, 0, len(keep))
	by := make([]bool, 0, len(keep))
	for _, i := range keep {
		bx = append(bx, x[i])
		by = append(by, y[i])
	}
	return bx, by
}

func sameAuthor(corpus *bib.Corpus, a, b bib.PaperID, name string) bool {
	pa, pb := corpus.Paper(a), corpus.Paper(b)
	ta := pa.TruthAt(pa.AuthorIndex(name))
	tb := pb.TruthAt(pb.AuthorIndex(name))
	return ta != bib.UnknownAuthor && ta == tb
}

// Name implements Disambiguator.
func (s *Supervised) Name() string { return s.algo.String() }

// Cluster implements Disambiguator: papers are grouped by average-
// linkage HAC over the classifier's pairwise same-author probabilities
// (distance 1−p, merge threshold 0.5). Average linkage is the standard
// robust aggregation for pairwise disambiguation — naive transitive
// closure of positive decisions lets a single false-positive pair fuse
// two whole authors.
func (s *Supervised) Cluster(corpus *bib.Corpus, name string, papers []bib.PaperID) []int {
	n := len(papers)
	if n < 2 {
		return singletons(n)
	}
	prob := make([][]float64, n)
	for i := range prob {
		prob[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			f := s.ex.PairFeatures(papers[i], papers[j], name)
			p := s.clf.PredictProb(f)
			prob[i][j] = p
			prob[j][i] = p
		}
	}
	dist := func(i, j int) float64 { return 1 - prob[i][j] }
	return cluster.HAC(n, dist, cluster.AverageLinkage, 0.5, s.Workers)
}
