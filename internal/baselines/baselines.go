// Package baselines re-implements the eight comparison systems of the
// paper's evaluation (§VI-A3): four unsupervised disambiguators — ANON
// [22] (ego-network embedding + HAC), NetE [23] (multi-relation paper
// embedding + HDBSCAN), Aminer [33] (global+local embedding + HAC), and
// GHOST [27] (path-based similarity + affinity propagation) — plus a
// supervised pairwise-classification wrapper for AdaBoost, GBDT, Random
// Forest and XGBoost over Treeratpituk&Giles-style features.
//
// All baselines share the top-down framing the paper critiques: for each
// ambiguous name they build an ego view in which every occurrence of a
// co-author name is a single vertex, then cluster that name's papers.
// Fidelity notes per system live in DESIGN.md (substitution 5).
package baselines

import (
	"iuad/internal/bib"
	"iuad/internal/graph"
)

// Disambiguator clusters the papers of one ambiguous name: it returns
// one cluster label per input paper (labels are local to the call).
type Disambiguator interface {
	Name() string
	Cluster(corpus *bib.Corpus, name string, papers []bib.PaperID) []int
}

// egoNetwork is the shared top-down view: paper vertices 0..n-1 followed
// by one vertex per distinct co-author name (the "all same-name authors
// are one vertex" simplification of the ego-network methods).
type egoNetwork struct {
	g        *graph.Graph
	papers   int
	coauthor map[string]int // name -> vertex id
}

func buildEgoNetwork(corpus *bib.Corpus, target string, papers []bib.PaperID) *egoNetwork {
	e := &egoNetwork{
		g:        graph.New(len(papers)),
		papers:   len(papers),
		coauthor: make(map[string]int),
	}
	for pi, pid := range papers {
		p := corpus.Paper(pid)
		for _, a := range p.Authors {
			if a == target {
				continue
			}
			cv, ok := e.coauthor[a]
			if !ok {
				cv = e.g.AddVertex()
				e.coauthor[a] = cv
			}
			e.g.AddEdge(pi, cv)
		}
	}
	return e
}

// coauthorsOf lists the ego-vertex IDs of a paper's co-authors.
func (e *egoNetwork) coauthorsOf(corpus *bib.Corpus, target string, pid bib.PaperID, paperIdx int) []int {
	p := corpus.Paper(pid)
	var out []int
	for _, a := range p.Authors {
		if a == target {
			continue
		}
		if cv, ok := e.coauthor[a]; ok {
			out = append(out, cv)
		}
	}
	_ = paperIdx
	return out
}

// singletons returns the all-singleton labeling (used for degenerate
// inputs).
func singletons(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
