package baselines

import (
	"math"

	"iuad/internal/bib"
	"iuad/internal/cluster"
	"iuad/internal/embed"
	"iuad/internal/graph"
	"iuad/internal/textvec"
)

// ANON is the ego-network embedding + hierarchical agglomerative
// clustering baseline (Zhang & Al Hasan, CIKM 2017 [22]).
type ANON struct {
	// Threshold is the HAC cosine-distance merge threshold.
	Threshold float64
	Walk      embed.Config
	// Workers parallelizes the HAC distance-matrix fill (≤1 = serial;
	// the embedding distance is read-only, so concurrent calls are safe).
	Workers int
}

// NewANON returns the default parameterization.
func NewANON(seed int64) *ANON {
	w := embed.DefaultConfig()
	w.Seed = seed
	w.Dim = 32
	w.WalksPerVertex = 6
	w.WalkLength = 12
	w.Epochs = 2
	return &ANON{Threshold: 0.45, Walk: w}
}

// Name implements Disambiguator.
func (a *ANON) Name() string { return "ANON" }

// Cluster implements Disambiguator.
func (a *ANON) Cluster(corpus *bib.Corpus, name string, papers []bib.PaperID) []int {
	n := len(papers)
	if n < 2 {
		return singletons(n)
	}
	ego := buildEgoNetwork(corpus, name, papers)
	emb := embed.DeepWalk(ego.g, a.Walk)
	dist := func(i, j int) float64 { return emb.Distance(i, j) }
	return cluster.HAC(n, dist, cluster.AverageLinkage, a.Threshold, a.Workers)
}

// NetE is the multi-relation network embedding baseline (Xu et al., CIKM
// 2018 [23]): papers are linked through shared co-authors, venues and
// title words; the combined graph is embedded and clustered with
// HDBSCAN.
type NetE struct {
	Walk    embed.Config
	HDBSCAN cluster.HDBSCANConfig
}

// NewNetE returns the default parameterization.
func NewNetE(seed int64) *NetE {
	w := embed.DefaultConfig()
	w.Seed = seed
	w.Dim = 32
	w.WalksPerVertex = 6
	w.WalkLength = 12
	w.Epochs = 2
	return &NetE{
		Walk:    w,
		HDBSCAN: cluster.HDBSCANConfig{MinPts: 2, MinClusterSize: 2, CutRatio: 2.5},
	}
}

// Name implements Disambiguator.
func (ne *NetE) Name() string { return "NetE" }

// paperCtx caches the relation-building view of one paper.
type paperCtx struct {
	coauth map[string]struct{}
	words  map[string]struct{}
	venue  string
}

func newPaperCtx(p *bib.Paper, target string) paperCtx {
	c := paperCtx{coauth: map[string]struct{}{}, words: map[string]struct{}{}, venue: p.Venue}
	for _, a := range p.Authors {
		if a != target {
			c.coauth[a] = struct{}{}
		}
	}
	for _, w := range bib.Keywords(p.Title) {
		c.words[w] = struct{}{}
	}
	return c
}

// related decides whether two papers are linked in NetE's multigraph: a
// shared co-author, a shared venue, or ≥2 shared keywords.
func related(a, b *paperCtx) bool {
	for x := range a.coauth {
		if _, ok := b.coauth[x]; ok {
			return true
		}
	}
	if a.venue != "" && a.venue == b.venue {
		return true
	}
	shared := 0
	small, large := a.words, b.words
	if len(small) > len(large) {
		small, large = large, small
	}
	for w := range small {
		if _, ok := large[w]; ok {
			shared++
			if shared >= 2 {
				return true
			}
		}
	}
	return false
}

// Cluster implements Disambiguator.
func (ne *NetE) Cluster(corpus *bib.Corpus, name string, papers []bib.PaperID) []int {
	n := len(papers)
	if n < 2 {
		return singletons(n)
	}
	g := graph.New(n)
	ctxs := make([]paperCtx, n)
	for i, pid := range papers {
		ctxs[i] = newPaperCtx(corpus.Paper(pid), name)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if related(&ctxs[i], &ctxs[j]) {
				g.AddEdge(i, j)
			}
		}
	}
	emb := embed.DeepWalk(g, ne.Walk)
	dist := func(i, j int) float64 { return emb.Distance(i, j) }
	return cluster.HDBSCAN(n, dist, ne.HDBSCAN)
}

// Aminer combines a global text representation with a local ego-network
// embedding and clusters with HAC (Zhang et al., KDD 2018 [33]). The
// global side uses corpus-wide SGNS keyword vectors (the paper's
// human-in-the-loop fine-tuning has no offline equivalent; DESIGN.md
// substitution 5).
type Aminer struct {
	Threshold float64
	Walk      embed.Config
	// Global holds the corpus-wide keyword embeddings.
	Global *textvec.Embeddings
	// Workers parallelizes the HAC distance-matrix fill (≤1 = serial).
	Workers int
}

// NewAminer returns the default parameterization. global may be nil, in
// which case only the local structural embedding is used. The threshold
// is deliberately conservative: the original system behaves high-
// precision / low-recall (Table III: MicroP 0.82, MicroR 0.42).
func NewAminer(global *textvec.Embeddings, seed int64) *Aminer {
	w := embed.DefaultConfig()
	w.Seed = seed
	w.Dim = 32
	w.WalksPerVertex = 6
	w.WalkLength = 12
	w.Epochs = 2
	return &Aminer{Threshold: 0.35, Walk: w, Global: global}
}

// Name implements Disambiguator.
func (am *Aminer) Name() string { return "Aminer" }

// Cluster implements Disambiguator.
func (am *Aminer) Cluster(corpus *bib.Corpus, name string, papers []bib.PaperID) []int {
	n := len(papers)
	if n < 2 {
		return singletons(n)
	}
	ego := buildEgoNetwork(corpus, name, papers)
	local := embed.DeepWalk(ego.g, am.Walk)
	var centroids [][]float64
	if am.Global != nil {
		centroids = make([][]float64, n)
		for i, pid := range papers {
			centroids[i] = am.Global.CenteredCentroid(bib.Keywords(corpus.Paper(pid).Title))
		}
	}
	dist := func(i, j int) float64 {
		d := local.Distance(i, j)
		if centroids != nil {
			gd := 1 - textvec.Cosine(centroids[i], centroids[j])
			d = (d + gd) / 2
		}
		return d
	}
	return cluster.HAC(n, dist, cluster.AverageLinkage, am.Threshold, am.Workers)
}

// GHOST is the path-based graph method (Fan et al., JDIQ 2011 [27]): the
// co-author graph of the name's ego view (target vertex removed), paper
// similarity from valid paths between the papers' co-author sets, and
// affinity propagation for grouping.
type GHOST struct {
	// MaxPathLen bounds the path enumeration (§: GHOST uses valid paths;
	// enumeration cost explodes beyond 3-4 hops).
	MaxPathLen int
	// PathCap caps the number of counted paths per (u,v) pair.
	PathCap int
	AP      cluster.APConfig
}

// NewGHOST returns the default parameterization.
func NewGHOST() *GHOST {
	return &GHOST{MaxPathLen: 3, PathCap: 64, AP: cluster.DefaultAPConfig()}
}

// Name implements Disambiguator.
func (gh *GHOST) Name() string { return "GHOST" }

// Cluster implements Disambiguator.
func (gh *GHOST) Cluster(corpus *bib.Corpus, name string, papers []bib.PaperID) []int {
	n := len(papers)
	if n < 2 {
		return singletons(n)
	}
	// Co-author graph without the target vertex: co-author names are
	// vertices; an edge joins names co-occurring in one of the papers.
	idOf := map[string]int{}
	g := graph.New(0)
	coOf := make([][]int, n)
	for i, pid := range papers {
		p := corpus.Paper(pid)
		var ids []int
		for _, a := range p.Authors {
			if a == name {
				continue
			}
			id, ok := idOf[a]
			if !ok {
				id = g.AddVertex()
				idOf[a] = id
			}
			ids = append(ids, id)
		}
		for x := 0; x < len(ids); x++ {
			for y := x + 1; y < len(ids); y++ {
				if ids[x] != ids[y] {
					g.AddEdge(ids[x], ids[y])
				}
			}
		}
		coOf[i] = ids
	}
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := gh.pairSimilarity(g, coOf[i], coOf[j])
			sim[i][j] = s
			sim[j][i] = s
		}
	}
	return cluster.AffinityPropagation(sim, gh.AP)
}

// pairSimilarity scores two papers by the connectivity of their
// co-author sets: identical co-authors count 1; otherwise simple paths of
// length L contribute 2^−L each.
func (gh *GHOST) pairSimilarity(g *graph.Graph, a, b []int) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	total := 0.0
	for _, u := range a {
		for _, v := range b {
			if u == v {
				total++
				continue
			}
			for l := 1; l <= gh.MaxPathLen; l++ {
				c := g.CountPaths(u, v, l, gh.PathCap)
				total += float64(c) * math.Pow(2, -float64(l))
			}
		}
	}
	return total / float64(len(a)*len(b))
}
