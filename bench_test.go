// Benchmarks regenerating every table and figure of the paper's
// evaluation (one per artifact; see DESIGN.md §2), plus ablation benches
// for the design choices called out in DESIGN.md §3. Run with:
//
//	go test -bench=. -benchmem
//
// The benches run at the quick corpus scale so a full sweep stays
// laptop-friendly; `cmd/experiments -scale default` regenerates the
// default-scale numbers recorded in EXPERIMENTS.md.
package iuad_test

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"iuad/internal/bib"
	"iuad/internal/core"
	"iuad/internal/experiments"
	"iuad/internal/synth"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
	suiteErr  error
)

func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = experiments.NewSuite(experiments.QuickOptions())
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

func BenchmarkFig3PapersPerName(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig3(s.Dataset)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PapersPerNameSlope, "slopeA")
	}
}

func BenchmarkFig3PairFrequency(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig3(s.Dataset)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PairFrequencySlope, "slopeB")
	}
}

func BenchmarkTable3Comparison(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, results, err := experiments.RunTable3(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Method == "IUAD" {
				b.ReportMetric(r.Metrics.MicroF, "IUAD-F1")
			}
		}
	}
}

func BenchmarkTable4Stages(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, r, err := experiments.RunTable4(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GCN.MicroR-r.SCN.MicroR, "recall-lift")
	}
}

func BenchmarkTable5Scalability(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, points, err := experiments.RunTable5(s, []float64{0.5, 1.0})
		if err != nil {
			b.Fatal(err)
		}
		last := points[len(points)-1]
		b.ReportMetric(last.Times["IUAD"].Seconds(), "IUAD-s/name")
		b.ReportMetric(last.Times["GHOST"].Seconds(), "GHOST-s/name")
	}
}

// BenchmarkTable5ScalabilityWorkers is the workers-parameterized variant
// of the Table V scalability workload: the full IUAD engine (stage 1 +
// stage 2) on the suite's largest corpus at Workers=1/2/4/8. Keyword
// embeddings are trained once and shared — SGNS is inherently
// sequential SGD, identical for every worker count, and not part of the
// name-blocked engine being scaled. The Workers knob guarantees
// bit-identical output at every setting, so the sub-benchmarks differ
// in time only.
func BenchmarkTable5ScalabilityWorkers(b *testing.B) {
	s := benchSuite(b)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := s.Opts.Core
			cfg.Workers = w
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scn, err := core.BuildSCN(s.Corpus, cfg)
				if err != nil {
					b.Fatal(err)
				}
				pl, err := core.BuildGCN(s.Corpus, scn, s.Emb, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(pl.GCN.VertexCount()), "GCN-verts")
			}
		})
	}
}

// BenchmarkStage1SCN isolates stage 1 (η-SCR mining + stable network
// assembly): the per-paper pair scans whose hashing cost the interned
// columnar core targets. Allocations are reported so the intern
// refactor's memory win is visible in the perf trajectory.
func BenchmarkStage1SCN(b *testing.B) {
	s := benchSuite(b)
	cfg := s.Opts.Core
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scn, err := core.BuildSCN(s.Corpus, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(scn.VertexCount()), "SCN-verts")
	}
}

// BenchmarkStage2GCN isolates stage 2 (profiles, the six similarity
// functions, EM fit, merge rounds) on a prebuilt SCN — the hot path of
// the pipeline and the main beneficiary of int-indexed profiles.
func BenchmarkStage2GCN(b *testing.B) {
	s := benchSuite(b)
	cfg := s.Opts.Core
	scn, err := core.BuildSCN(s.Corpus, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl, err := core.BuildGCN(s.Corpus, scn, s.Emb, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(pl.GCN.VertexCount()), "GCN-verts")
	}
}

// BenchmarkIncrementalWorkers measures the §V-E streaming path at
// Workers=1 vs GOMAXPROCS (per-candidate scoring fans out for ambiguous
// names).
func BenchmarkIncrementalWorkers(b *testing.B) {
	s := benchSuite(b)
	for _, w := range []int{1, 0} {
		name := fmt.Sprintf("workers=%d", w)
		if w == 0 {
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) {
			cfg := s.Opts.Core
			cfg.Workers = w
			pl, err := core.Run(s.Corpus, cfg)
			if err != nil {
				b.Fatal(err)
			}
			name := s.TestNames[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pl.AddPaper(iuadBenchPaper(name, i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func iuadBenchPaper(author string, i int) bib.Paper {
	return bib.Paper{
		Title:   fmt.Sprintf("incremental benchmark probe %d", i),
		Venue:   "KDD",
		Year:    2021,
		Authors: []string{author},
	}
}

// BenchmarkAddPapersBatch compares one-at-a-time AddPaper against
// batched AddPapers at several batch sizes over the same 64-paper
// stream (ambiguous test names, so candidate scoring dominates). Every
// iteration restores a fresh pipeline from an in-memory snapshot, so
// each mode ingests into identical state; results are bit-identical
// across modes by the batched-ingest contract, only the shared work
// per paper changes. BENCH_serve.json records the benchjson variant.
func BenchmarkAddPapersBatch(b *testing.B) {
	s := benchSuite(b)
	cfg := s.Opts.Core
	cfg.Workers = 1
	base, err := core.Run(s.Corpus, cfg)
	if err != nil {
		b.Fatal(err)
	}
	var snap bytes.Buffer
	if err := core.SavePipeline(&snap, base); err != nil {
		b.Fatal(err)
	}
	const streamLen = 64
	papers := make([]bib.Paper, streamLen)
	for i := range papers {
		// Two ambiguous names per paper: large candidate sets to score
		// and collaboration edges to register, so the shared h-hop
		// invalidation pass is on the measured path.
		papers[i] = iuadBenchPaper(s.TestNames[i%len(s.TestNames)], i)
		if other := s.TestNames[(i+1)%len(s.TestNames)]; other != papers[i].Authors[0] {
			papers[i].Authors = append(papers[i].Authors, other)
		}
	}
	for _, batch := range []int{1, 8, 64} {
		name := fmt.Sprintf("batch=%d", batch)
		if batch == 1 {
			name = "one-at-a-time"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				pl, err := core.LoadPipeline(bytes.NewReader(snap.Bytes()))
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if batch == 1 {
					for _, p := range papers {
						if _, err := pl.AddPaper(p); err != nil {
							b.Fatal(err)
						}
					}
				} else {
					for off := 0; off < len(papers); off += batch {
						end := off + batch
						if end > len(papers) {
							end = len(papers)
						}
						if _, err := pl.AddPapers(context.Background(), papers[off:end]); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*streamLen), "ns/paper")
		})
	}
}

func BenchmarkFig5DataScale(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig5(s, []float64{0.5, 1.0}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6Incremental(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, results, err := experiments.RunTable6(s, []int{100})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(results[0].PerPaper.Microseconds())/1000, "ms/paper")
	}
}

func BenchmarkFig6Similarity(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig6(s); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (DESIGN.md §3) ---

func ablationRun(b *testing.B, mutate func(*core.Config)) {
	s := benchSuite(b)
	cfg := s.Opts.Core
	mutate(&cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl, err := core.Run(s.Corpus, cfg)
		if err != nil {
			b.Fatal(err)
		}
		m := experiments.NetworkMetrics(s.Corpus, pl.GCN, s.TestNames)
		b.ReportMetric(m.MicroF, "MicroF")
		b.ReportMetric(m.MicroP, "MicroP")
		b.ReportMetric(m.MicroR, "MicroR")
	}
}

func BenchmarkAblationBaseline(b *testing.B) {
	ablationRun(b, func(cfg *core.Config) {})
}

func BenchmarkAblationEta3(b *testing.B) {
	ablationRun(b, func(cfg *core.Config) { cfg.Eta = 3 })
}

func BenchmarkAblationNoSplitBalance(b *testing.B) {
	ablationRun(b, func(cfg *core.Config) { cfg.SplitMinPapers = 0 })
}

func BenchmarkAblationFullPairTraining(b *testing.B) {
	ablationRun(b, func(cfg *core.Config) { cfg.SampleRate = 1.0 })
}

func BenchmarkAblationWLDepth1(b *testing.B) {
	ablationRun(b, func(cfg *core.Config) { cfg.WLIterations = 1 })
}

func BenchmarkAblationAllPairsMerge(b *testing.B) {
	ablationRun(b, func(cfg *core.Config) { cfg.Merge = core.MergeAllPairs })
}

func BenchmarkAblationSingleMergeRound(b *testing.B) {
	ablationRun(b, func(cfg *core.Config) { cfg.MergeRounds = 1 })
}

// BenchmarkSynthGenerate measures raw corpus generation throughput.
func BenchmarkSynthGenerate(b *testing.B) {
	cfg := synth.DefaultConfig()
	cfg.Authors = 1000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		d := synth.Generate(cfg)
		b.ReportMetric(float64(d.Corpus.Len()), "papers")
	}
}
