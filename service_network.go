package iuad

import (
	"fmt"

	"iuad/internal/core"
	"iuad/internal/netstats"
)

// This file is the Service's collaboration-network analytics surface —
// the disambiguated graph served as a product (DESIGN.md §13). Every
// method loads the published view ONCE and queries the epoch-keyed
// analytics cache for exactly that view, so an answer is always
// internally consistent with one epoch even while ingest publishes
// later ones. Repeat queries on one epoch are a single atomic load
// (no lock), and all results are byte-identical across runs, worker
// counts, and shard counts.

// NetworkStats is the whole-graph topology summary served by
// Service.Network: density, component structure, degree distribution
// with its log-log slope, and average clustering.
type NetworkStats = netstats.NetworkStats

// DegreeBucket is one point of NetworkStats.DegreeHistogram.
type DegreeBucket = netstats.DegreeBucket

// EgoGraph is the bounded-BFS neighborhood served by Service.Ego.
type EgoGraph = netstats.EgoGraph

// EgoVertex and EgoEdge are the elements of an EgoGraph.
type EgoVertex = netstats.EgoVertex
type EgoEdge = netstats.EgoEdge

// ClusteringInfo is one author's local clustering summary.
type ClusteringInfo = netstats.Clustering

// Communities is the deterministic label-propagation partition served
// by Service.Communities.
type Communities = netstats.Communities

// AnalyticsStats is the analytics-cache accounting (hits, misses,
// rebuilds, compile time) served by Service.Analytics and /metrics.
type AnalyticsStats = netstats.CacheStats

// EgoResult is an EgoGraph with the vertex names resolved from the
// same epoch, aligned with Vertices.
type EgoResult struct {
	EgoGraph
	Names []string `json:"names"`
}

// Collaborator is one ranked coauthor (shared-paper weight, common
// neighbors, neighborhood overlap) with its name resolved from the
// same epoch.
type Collaborator struct {
	netstats.Collaborator
	Name string `json:"name"`
}

// analytics returns the published view and its compiled analytics
// graph as one consistent pair.
func (s *Service) analytics() (*core.View, *netstats.Graph) {
	v := s.pub.Current()
	return v, s.net.For(v)
}

// Network returns the published collaboration network's topology
// summary. The first call on a fresh epoch compiles the analytics
// graph (O(V + E·d) for the clustering sweep); repeat calls on the
// same epoch are served from the cache with one atomic load — the
// ≥10× win BENCH_network.json pins.
func (s *Service) Network() NetworkStats {
	_, g := s.analytics()
	return g.Stats()
}

// Ego returns the author's collaboration neighborhood within the given
// hop radius (0 = just the author), with edge weights and the vertex
// names of the same epoch. Hops above netstats.MaxEgoHops are clamped,
// and the subgraph is truncated past netstats.MaxEgoVertices (the
// Truncated flag reports it). Unknown authors — including vertices
// lost to a partial snapshot recovery — return ErrUnknownAuthor.
func (s *Service) Ego(author, hops int) (*EgoResult, error) {
	v, g := s.analytics()
	eg, ok := g.Ego(author, hops)
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownAuthor, author)
	}
	res := &EgoResult{EgoGraph: eg, Names: make([]string, len(eg.Vertices))}
	for i, ev := range eg.Vertices {
		res.Names[i], _ = v.AuthorName(int(ev.ID))
	}
	return res, nil
}

// TopCollaborators returns the author's k strongest coauthors —
// shared-paper count descending, ties by ascending ID — with the
// common-neighbor and neighborhood-overlap features of each pair
// (candidate γ features for the merge scorer). k ≤ 0 returns every
// coauthor.
func (s *Service) TopCollaborators(author, k int) ([]Collaborator, error) {
	v, g := s.analytics()
	cs, ok := g.TopCollaborators(author, k)
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownAuthor, author)
	}
	out := make([]Collaborator, len(cs))
	for i, c := range cs {
		out[i] = Collaborator{Collaborator: c}
		out[i].Name, _ = v.AuthorName(int(c.ID))
	}
	return out, nil
}

// Clustering returns the author's local clustering summary (triangle
// count and coefficient). The whole-graph average is
// Network().AvgClustering.
func (s *Service) Clustering(author int) (ClusteringInfo, error) {
	_, g := s.analytics()
	c, ok := g.ClusteringOf(author)
	if !ok {
		return ClusteringInfo{}, fmt.Errorf("%w: %d", ErrUnknownAuthor, author)
	}
	return c, nil
}

// Communities returns the epoch's community partition via
// deterministic weighted label propagation: labels seeded with the
// interned vertex ID, ascending-ID sweeps, max-weight adoption with
// smallest-label tie-break. The result is computed once per epoch and
// shared — byte-identical across runs and worker counts — and must
// not be mutated.
func (s *Service) Communities() *Communities {
	_, g := s.analytics()
	return g.Communities()
}

// Analytics returns the analytics-cache accounting: lock-free hits,
// epoch misses, actual rebuilds, and cumulative compile time.
func (s *Service) Analytics() AnalyticsStats { return s.net.Stats() }
