package iuad_test

import (
	"bytes"
	"strings"
	"testing"

	"iuad"
)

// TestFacadeRoundTrip exercises the public API end to end the way a
// downstream user would: build a corpus, disambiguate, inspect clusters,
// stream one new paper.
func TestFacadeRoundTrip(t *testing.T) {
	cfg := iuad.DefaultSyntheticConfig()
	cfg.Seed = 99
	cfg.Authors = 300
	cfg.Communities = 8
	d := iuad.GenerateSynthetic(cfg)

	pcfg := iuad.DefaultConfig()
	pcfg.Embedding.Epochs = 2
	pcfg.Embedding.Dim = 16
	pcfg.SampleRate = 0.5
	pl, err := iuad.Disambiguate(d.Corpus, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if pl.SCN == nil || pl.GCN == nil || pl.Model == nil {
		t.Fatal("pipeline missing stages")
	}
	if pl.GCN.VertexCount() > pl.SCN.VertexCount() {
		t.Fatal("GCN has more vertices than SCN")
	}
	// Slot lookups work through the facade types.
	if v := pl.GCN.ClusterOfSlot(iuad.Slot{Paper: 0, Index: 0}); v < 0 {
		t.Fatal("slot 0/0 unassigned")
	}
	// Incremental entry point.
	as, err := pl.AddPaper(iuad.Paper{
		Title: "A Fresh Paper", Venue: "VLDB", Year: 2021,
		Authors: []string{d.Corpus.Paper(0).Authors[0]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 1 {
		t.Fatalf("assignments=%d", len(as))
	}
}

func TestFacadeCorpusIO(t *testing.T) {
	c := iuad.NewCorpus(0)
	c.MustAdd(iuad.Paper{Title: "T", Venue: "V", Year: 2001, Authors: []string{"A B"}})
	c.Freeze()
	var buf bytes.Buffer
	if err := iuad.WriteCorpus(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := iuad.ReadCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 1 || back.Paper(0).Title != "T" {
		t.Fatal("round trip mismatch")
	}
}

func TestFacadeParseDBLP(t *testing.T) {
	const doc = `<dblp><article key="k"><author>Ann Lee</author>` +
		`<title>X.</title><journal>J</journal><year>2000</year></article></dblp>`
	c, err := iuad.ParseDBLP(strings.NewReader(doc), 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len=%d", c.Len())
	}
}

func TestFacadeBuildSCNOnly(t *testing.T) {
	c := iuad.NewCorpus(0)
	for i := 0; i < 3; i++ {
		c.MustAdd(iuad.Paper{Title: "T", Authors: []string{"A B", "C D"}})
	}
	c.Freeze()
	scn, err := iuad.BuildSCN(c, iuad.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if scn.EdgeCount() != 1 {
		t.Fatalf("edges=%d, want 1", scn.EdgeCount())
	}
}
